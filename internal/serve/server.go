package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"elsa"
	"elsa/internal/serve/cluster"
	"elsa/serve/client"
)

// Config tunes the serving subsystem. Zero values select production-safe
// defaults.
type Config struct {
	// BatchWindow is how long the dispatcher holds the first request of a
	// micro-batch open for followers (default 2ms).
	BatchWindow time.Duration
	// MaxBatch dispatches a batch early once this many ops have coalesced
	// (default 64).
	MaxBatch int
	// MaxQueue bounds requests resident in the dispatcher; beyond it
	// submissions fail with ErrQueueFull / HTTP 429 (default 256).
	MaxQueue int
	// Workers is the AttendBatch worker count per dispatched batch
	// (default: GOMAXPROCS via elsa).
	Workers int
	// RequestTimeout bounds one request's queue + compute time
	// (default 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// CompatLegacy re-admits bare pre-envelope POST bodies (deprecated
	// since the envelope landed, now sunset by default): with it set, a
	// body without an `op` key decodes as the payload itself under
	// anonymous/interactive admission metadata, exactly as before.
	// Default false — bare payloads answer 400 with a migration hint.
	CompatLegacy bool

	// Replicas is how many in-process engine replicas each pooled
	// configuration runs — micro-batches for one configuration spread
	// across this many dispatch shards, the software analogue of the
	// paper's replicated accelerator modules (default 2; default 0 when
	// WorkerAddrs is set, making the server a pure dispatch frontend).
	// Negative means explicitly zero — a dispatch-only frontend even
	// before any worker has joined. One engine is always built per
	// configuration for calibration and locally-hosted sessions, even at
	// zero replicas.
	Replicas int
	// MaxEngines bounds resident replica sets; beyond it the
	// least-recently-used configuration is evicted (default 8).
	MaxEngines int

	// MaxSessions bounds live decode sessions; at capacity the
	// least-recently-used session is evicted (default 1024).
	MaxSessions int
	// SessionTTL evicts sessions idle for longer than this (default 15m;
	// negative disables expiry).
	SessionTTL time.Duration
	// MaxSessionTokens bounds one session's appended prefix (default 65536).
	MaxSessionTokens int
	// SerialDecode disables continuous decode batching: session queries
	// attend inline under the session gate instead of coalescing on the
	// per-replica decode loop. It exists as the baseline the decode
	// benchmarks compare against; production leaves it false.
	SerialDecode bool
	// ExactBackend selects the server-wide default exact backend
	// (elsa.BackendScores or elsa.BackendLinearScan) applied to exact
	// operating points (p = 0, no pinned threshold) whose request leaves
	// the backend unspecified; per-request and per-session selectors
	// still win. Empty keeps the default exact pipeline. An unknown name
	// is ignored (New cannot fail), so callers should validate with
	// elsa.ValidBackend first — elsaserve's -exact-backend flag does.
	ExactBackend string

	// StateDir, when set, persists calibrated thresholds so a restarted
	// server serves its first calibrated request without re-running
	// Calibrate, and holds spilled session state when SessionSpill is
	// enabled. Empty keeps all state in memory only.
	StateDir string
	// MaxThresholdFiles caps how many calibrated-threshold files StateDir
	// retains; beyond it the least-recently-used files (by mtime, which
	// loads refresh) are removed (default 512; negative = unbounded).
	MaxThresholdFiles int
	// SessionSpill, when positive, pages locally-hosted sessions idle
	// longer than this out of memory into StateDir; the next op on the
	// session rehydrates it transparently. Requires StateDir; 0 disables
	// spilling (the default).
	SessionSpill time.Duration
	// ColdWatermark bounds each session stream's resident f32 hot tail:
	// once the hot region reaches twice this many tokens the oldest half
	// demotes to the bit-packed cold representation in one chunk. 0 keeps
	// whole streams hot (the default, exact-attention behavior).
	ColdWatermark int

	// QuotaRPS is each client's sustained admission rate in ops/second,
	// keyed by the envelope's client_id (or X-Elsa-Client). 0 disables
	// per-client quotas (the default).
	QuotaRPS float64
	// QuotaBurst is each client's token-bucket burst capacity
	// (default max(1, QuotaRPS)).
	QuotaBurst float64
	// ClassWeights are the dispatcher's weighted-dequeue shares for
	// interactive, batch, and background traffic (default 16:4:1; the
	// zero value selects the default).
	ClassWeights [NumClasses]int

	// WorkerAddrs lists remote elsaserve workers ("host:port" or full
	// URLs) this server dispatches to alongside its local replicas. Empty
	// (the default) keeps serving purely in-process.
	WorkerAddrs []string
	// WorkerProbeInterval is how often each worker's /v1/healthz is
	// probed (default 5s).
	WorkerProbeInterval time.Duration
	// WorkerInFlight caps concurrent ops on the wire per worker
	// (default 32).
	WorkerInFlight int
	// WorkerFailLimit ejects a worker from routing after this many
	// consecutive probe/dispatch failures; a successful probe re-admits
	// it (default 3).
	WorkerFailLimit int
	// DispatchRetries is how many times one op is re-executed on a
	// sibling shard after a retryable worker failure (default 2).
	DispatchRetries int

	// DrainTimeout bounds how long a draining server waits for its pinned
	// sessions to finish before force-expiring the rest (default 60s;
	// negative waits indefinitely).
	DrainTimeout time.Duration

	// SyncMirror replays shadow-mirror appends inline on the remote
	// append path instead of batching them onto the registry's background
	// flusher. The async default keeps the frontend's per-token mirror
	// cost off the append critical path; sync mode is the deterministic
	// baseline the mirror-cost benchmark compares against.
	SyncMirror bool
}

func (c *Config) setDefaults() {
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Replicas < 0 {
		// Explicitly zero: a dispatch-only frontend, even with no static
		// workers configured (the elastic case — the fleet arrives by
		// joining later).
		c.Replicas = 0
	} else if c.Replicas == 0 {
		if len(c.WorkerAddrs) > 0 {
			// A fleet frontend defaults to dispatch-only: remote workers
			// carry the compute, local engines exist for calibration and
			// sessions. Serving locally too takes an explicit Replicas.
			c.Replicas = 0
		} else {
			c.Replicas = 2
		}
	}
	if c.MaxEngines <= 0 {
		c.MaxEngines = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.MaxSessionTokens <= 0 {
		c.MaxSessionTokens = 65536
	}
	if c.WorkerProbeInterval <= 0 {
		c.WorkerProbeInterval = 5 * time.Second
	}
	if c.WorkerInFlight <= 0 {
		c.WorkerInFlight = 32
	}
	if c.WorkerFailLimit <= 0 {
		c.WorkerFailLimit = 3
	}
	if c.DispatchRetries <= 0 {
		c.DispatchRetries = 2
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = time.Minute
	}
	if c.MaxThresholdFiles == 0 {
		c.MaxThresholdFiles = 512
	} else if c.MaxThresholdFiles < 0 {
		c.MaxThresholdFiles = 0 // unbounded
	}
	if c.ColdWatermark < 0 {
		c.ColdWatermark = 0
	}
	if !elsa.ValidBackend(c.ExactBackend) {
		c.ExactBackend = elsa.BackendAuto
	}
}

// Server is the attention-serving subsystem: an http.Handler exposing
// one-shot batched attention (POST /v1/attend), autoregressive decode
// sessions (POST /v1/sessions and friends), health, and metrics over a
// shared replica pool, shard-aware dispatcher, and threshold registry.
type Server struct {
	cfg        Config
	pool       *enginePool
	disp       *dispatcher
	fleet      *workerSet
	cluster    *clusterView
	thresholds *thresholdRegistry
	sessions   *sessionRegistry
	quotas     *quotas
	metrics    *Metrics
	mux        *http.ServeMux

	// draining flips once on the first POST /v1/drain: existing sessions
	// keep flowing, new ones are refused, healthz reports "draining".
	draining atomic.Bool
	stopc    chan struct{} // closed by Close; ends the drain watcher
	bg       sync.WaitGroup
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg.setDefaults()
	m := NewMetrics()
	disp := newDispatcher(cfg.BatchWindow, cfg.MaxBatch, cfg.MaxQueue, cfg.Workers,
		cfg.DispatchRetries, cfg.WorkerProbeInterval, classWeights(cfg.ClassWeights), m)
	fleet := newWorkerSet(cfg.WorkerAddrs, cfg.WorkerProbeInterval, cfg.WorkerInFlight, cfg.WorkerFailLimit, m)
	thr := newThresholdRegistry(cfg.StateDir, cfg.MaxThresholdFiles, m)
	pool := newEnginePool(cfg.Replicas, cfg.MaxEngines, disp, fleet, m)
	table := cluster.NewTable()
	table.Seed(seedAddrs(cfg.WorkerAddrs))
	cv := newClusterView(table, fleet, pool, cfg.Replicas, cfg.WorkerProbeInterval, m)
	fleet.onProbe = cv.onProbe
	sessions := newSessionRegistry(cfg.MaxSessions, cfg.MaxSessionTokens, cfg.SessionTTL, thr, m)
	sessions.place = cv.place
	sessions.disp = disp
	sessions.serial = cfg.SerialDecode
	sessions.coldWatermark = cfg.ColdWatermark
	sessions.syncMirror = cfg.SyncMirror
	if cfg.SessionSpill > 0 && cfg.StateDir != "" {
		sessions.spillAfter = cfg.SessionSpill
		sessions.stateDir = cfg.StateDir
	}
	s := &Server{
		cfg:        cfg,
		pool:       pool,
		disp:       disp,
		fleet:      fleet,
		cluster:    cv,
		thresholds: thr,
		sessions:   sessions,
		quotas:     newQuotas(cfg.QuotaRPS, cfg.QuotaBurst),
		metrics:    m,
		mux:        http.NewServeMux(),
		stopc:      make(chan struct{}),
	}
	fleet.start()
	cv.start()
	if sessions.spillAfter > 0 {
		s.bg.Add(1)
		go s.spillLoop()
	}
	s.bg.Add(1)
	go s.mirrorLoop()
	s.mux.HandleFunc("POST /v1/attend", s.handleAttend)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/sessions/{id}/append", s.handleSessionAppend)
	s.mux.HandleFunc("POST /v1/sessions/{id}/query", s.handleSessionQuery)
	s.mux.HandleFunc("POST /v1/sessions/{id}/export", s.handleSessionExport)
	s.mux.HandleFunc("POST /v1/sessions/import", s.handleSessionImport)
	s.mux.HandleFunc("POST /v1/sessions/step", s.handleSessionStep)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/cluster/join", s.handleClusterJoin)
	s.mux.HandleFunc("GET /v1/cluster", s.handleClusterList)
	s.mux.HandleFunc("POST /v1/cluster/drain", s.handleClusterDrain)
	s.mux.HandleFunc("POST /v1/cluster/rebalance", s.handleClusterRebalance)
	s.mux.HandleFunc("POST /v1/drain", s.handleDrain)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// seedAddrs normalizes the static -workers list the same way the fleet
// does, so the membership table and worker map key identically.
func seedAddrs(addrs []string) []string {
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, normalizeWorkerAddr(a))
		}
	}
	return out
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the server's metric registry (used by tests and the
// command's logging).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close drains the serving stack in dependency order: the sweep loop and
// drain watcher stop, the health-probe loops stop (no worker flips state
// mid-drain), the dispatcher stops admission and flushes every pending
// micro-batch, the pool closes all shard queues (live and retired) once
// nothing can be enqueued again, and the shard loops are joined. Call
// after http.Server.Shutdown so no handler is left waiting.
func (s *Server) Close() {
	close(s.stopc)
	s.bg.Wait()
	s.cluster.close()
	s.fleet.close()
	s.disp.close()
	s.pool.closeShards()
	s.disp.waitShards()
}

// Draining reports whether this server has been asked to drain.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := HealthResponse{
		Status:   "ok",
		Engines:  s.pool.size(),
		Sessions: s.sessions.active(),
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	if n := s.fleet.size(); n > 0 {
		h.Role = "frontend"
		h.Workers = n
		h.HealthyWorkers = s.fleet.healthyCount()
		counts := s.cluster.table.Counts()
		h.Members = counts[cluster.StateJoining] + counts[cluster.StateActive] + counts[cluster.StateDraining]
		h.Draining = counts[cluster.StateDraining]
		h.ShardDepth = s.metrics.TotalShardDepth()
		h.DecodeCoalesced = s.metrics.DecodeCoalesced()
		h.DecodeMeanBatch = s.metrics.MeanDecodeBatchSize()
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.metrics.SetEngines(s.pool.size())
	s.metrics.SetQuotaClients(s.quotas.clients())
	if s.fleet.size() > 0 {
		version, members := s.cluster.table.Snapshot()
		states := make(map[string]int64, 4)
		for _, m := range members {
			states[m.State.String()]++
		}
		s.metrics.SetClusterMembers(states, version)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w) //nolint:errcheck // best effort: client gone mid-scrape
}

func (s *Server) handleAttend(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code, reason, class := s.attend(w, r)
	if reason != "" {
		s.metrics.ObserveRejection(reason)
	}
	seconds := time.Since(start).Seconds()
	s.metrics.ObserveRequest(code, seconds)
	s.metrics.ObserveClassLatency(class, seconds)
}

// attend runs one request end to end and returns the HTTP status it
// answered with, a rejection reason ("" when the op was served), and the
// request's priority class.
func (s *Server) attend(w http.ResponseWriter, r *http.Request) (int, string, Class) {
	var req AttendRequest
	meta, ok := decodeEnvelope(w, r, s.cfg.MaxBodyBytes, s.cfg.CompatLegacy, &req)
	if !ok {
		return http.StatusBadRequest, "bad_request", ClassInteractive
	}
	if err := req.validate(); err != nil {
		return fail(w, http.StatusBadRequest, err.Error()), "bad_request", meta.class
	}
	if admitted, wait := s.quotas.take(meta.clientID); !admitted {
		s.metrics.ObserveAdmission("shed_quota")
		setRetryAfter(w, wait)
		return fail(w, http.StatusTooManyRequests, "client quota exhausted"), "quota", meta.class
	}

	opts := req.options()
	set, err := s.pool.get(opts)
	if err != nil {
		return fail(w, http.StatusBadRequest, "engine: "+err.Error()), "bad_request", meta.class
	}
	ov := req.overrides()
	if ov.Backend == elsa.BackendAuto && ov.P == 0 && ov.Thr == nil {
		// Server-wide default backend, but only for exact ops that did not
		// pin anything themselves: an explicit t stays on the filter
		// pipeline and an approximate p can never ride an exact backend.
		ov.Backend = s.cfg.ExactBackend
	}
	var thr elsa.Threshold
	if ov.Thr != nil {
		thr = *ov.Thr
	} else if thr, err = s.thresholds.get(opts, ov.P, func() (elsa.Threshold, error) {
		return set.engines[0].Calibrate(ov.P, []elsa.Sample{{Q: req.Q, K: req.K}})
	}); err != nil {
		return fail(w, http.StatusBadRequest, "calibrate: "+err.Error()), "bad_request", meta.class
	}

	timeout := s.cfg.RequestTimeout
	var deadline time.Time
	if meta.deadline > 0 {
		if meta.deadline < timeout {
			timeout = meta.deadline
		}
		deadline = time.Now().Add(meta.deadline)
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	out, batchSize, _, err := s.disp.submit(ctx, set, elsa.BatchOp{Q: req.Q, K: req.K, V: req.V,
		Overrides: elsa.Overrides{Backend: ov.Backend}}, thr, meta.class, deadline)
	switch {
	case err == nil:
		s.metrics.ObserveAdmission("admitted")
	case errors.Is(err, ErrQueueFull):
		setRetryAfter(w, retryAfterOf(err))
		return fail(w, http.StatusTooManyRequests, err.Error()), "queue_full", meta.class
	case errors.Is(err, ErrDeadline):
		s.metrics.ObserveAdmission("shed_deadline")
		setRetryAfter(w, retryAfterOf(err))
		return fail(w, http.StatusTooManyRequests, err.Error()), "deadline", meta.class
	case errors.Is(err, ErrNoWorkers):
		setRetryAfter(w, retryAfterOf(err))
		return fail(w, http.StatusServiceUnavailable, err.Error()), "no_workers", meta.class
	case errors.Is(err, ErrClosed):
		return fail(w, http.StatusServiceUnavailable, err.Error()), "closed", meta.class
	case errors.Is(err, context.DeadlineExceeded):
		return fail(w, http.StatusGatewayTimeout, "request timed out"), "timeout", meta.class
	case errors.Is(err, context.Canceled):
		// Client went away; nobody reads the body, but account for it.
		return fail(w, http.StatusRequestTimeout, "request canceled"), "canceled", meta.class
	default:
		return fail(w, http.StatusInternalServerError, err.Error()), "internal", meta.class
	}

	return writeJSON(w, http.StatusOK, AttendResponse{
		Context:           out.Context,
		CandidateFraction: out.CandidateFraction,
		FallbackQueries:   out.FallbackQueries,
		Threshold:         ThresholdJSON{P: thr.P, T: thr.T, Queries: thr.Queries},
		BatchSize:         batchSize,
	}), "", meta.class
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionCreateRequest
	meta, ok := decodeEnvelope(w, r, s.cfg.MaxBodyBytes, s.cfg.CompatLegacy, &req)
	if !ok {
		return
	}
	if s.draining.Load() {
		setRetryAfter(w, s.cfg.WorkerProbeInterval)
		fail(w, http.StatusServiceUnavailable, errDraining.Error())
		return
	}
	if req.HeadDim <= 0 {
		fail(w, http.StatusBadRequest, "head_dim must be > 0")
		return
	}
	if req.P < 0 {
		fail(w, http.StatusBadRequest, fmt.Sprintf("p must be >= 0, got %g", req.P))
		return
	}
	if err := checkWireBackend(req.Backend, req.P); err != nil {
		fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Backend != elsa.BackendAuto && req.T != nil {
		fail(w, http.StatusBadRequest, "backend and t are mutually exclusive")
		return
	}
	backend := req.Backend
	if backend == elsa.BackendAuto && req.P == 0 && req.T == nil {
		// Server-wide default backend for exact sessions that did not pin
		// anything themselves (same rule as one-shot attend).
		backend = s.cfg.ExactBackend
	}
	if admitted, wait := s.quotas.take(meta.clientID); !admitted {
		s.metrics.ObserveAdmission("shed_quota")
		setRetryAfter(w, wait)
		fail(w, http.StatusTooManyRequests, "client quota exhausted")
		return
	}
	opts := normalizeOptions(elsa.Options{
		HeadDim:   req.HeadDim,
		HashBits:  req.HashBits,
		Seed:      req.Seed,
		Quantized: req.Quantized,
	}, req.HeadDim)
	set, err := s.pool.get(opts)
	if err != nil {
		fail(w, http.StatusBadRequest, "engine: "+err.Error())
		return
	}
	sess, err := s.sessions.create(r.Context(), set, opts, req.P, req.T, backend, req.Capacity, meta)
	if err != nil {
		if errors.Is(err, errWorkerLost) {
			setRetryAfter(w, s.cfg.WorkerProbeInterval)
			fail(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		fail(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := SessionCreateResponse{ID: sess.id}
	if sess.calibrated {
		resp.Threshold = &ThresholdJSON{P: sess.thr.P, T: sess.thr.T, Queries: sess.thr.Queries}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionAppend(w http.ResponseWriter, r *http.Request) {
	var req SessionAppendRequest
	if _, ok := decodeEnvelope(w, r, s.cfg.MaxBodyBytes, s.cfg.CompatLegacy, &req); !ok {
		return
	}
	if !s.chargeSessionQuota(w, r.PathValue("id")) {
		return
	}
	keys, values := req.Keys, req.Values
	if req.Key != nil || req.Value != nil {
		if keys != nil || values != nil {
			fail(w, http.StatusBadRequest, "use key/value or keys/values, not both")
			return
		}
		keys, values = [][]float32{req.Key}, [][]float32{req.Value}
	}
	if len(keys) == 0 {
		fail(w, http.StatusBadRequest, "append requires at least one key/value pair")
		return
	}
	if len(keys) != len(values) {
		fail(w, http.StatusBadRequest,
			fmt.Sprintf("%d keys but %d values", len(keys), len(values)))
		return
	}
	n, err := s.sessions.append(r.Context(), r.PathValue("id"), keys, values)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, SessionAppendResponse{Len: n})
	case errors.Is(err, errSessionNotFound):
		fail(w, http.StatusNotFound, err.Error())
	case errors.Is(err, errSessionFull):
		fail(w, http.StatusRequestEntityTooLarge, err.Error())
	case errors.Is(err, errWorkerLost):
		setRetryAfter(w, s.cfg.WorkerProbeInterval)
		fail(w, http.StatusServiceUnavailable, err.Error())
	default:
		fail(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleSessionQuery(w http.ResponseWriter, r *http.Request) {
	var req SessionQueryRequest
	meta, ok := decodeEnvelope(w, r, s.cfg.MaxBodyBytes, s.cfg.CompatLegacy, &req)
	if !ok {
		return
	}
	if len(req.Q) == 0 {
		fail(w, http.StatusBadRequest, "q must be non-empty")
		return
	}
	if !s.chargeSessionQuota(w, r.PathValue("id")) {
		return
	}
	if err := checkWireBackend(req.Backend, 0); err != nil {
		fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Backend != elsa.BackendAuto && req.T != nil {
		// An exact backend never consults a threshold, so a query naming
		// both is contradictory rather than silently dropping one.
		fail(w, http.StatusBadRequest, "backend and t are mutually exclusive")
		return
	}
	ov := elsa.Overrides{Backend: req.Backend}
	if req.T != nil {
		ov.Thr = &elsa.Threshold{T: *req.T}
	}
	// Decode queries ride the dispatcher now, so they get the same time
	// envelope as one-shot attend: the request timeout bounds queue +
	// compute, and an envelope deadline additionally arms the
	// dispatcher's deadline shedding.
	timeout := s.cfg.RequestTimeout
	var deadline time.Time
	if meta.deadline > 0 {
		if meta.deadline < timeout {
			timeout = meta.deadline
		}
		deadline = time.Now().Add(meta.deadline)
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	out, stats, n, thr, batchSize, err := s.sessions.query(ctx, r.PathValue("id"), req.Q, ov, deadline)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, SessionQueryResponse{
			Context:    out,
			Candidates: stats.Candidates,
			Fallback:   stats.Fallback,
			Len:        n,
			Threshold:  ThresholdJSON{P: thr.P, T: thr.T, Queries: thr.Queries},
			BatchSize:  batchSize,
		})
	case errors.Is(err, errSessionNotFound):
		fail(w, http.StatusNotFound, err.Error())
	case errors.Is(err, errWorkerLost):
		setRetryAfter(w, s.cfg.WorkerProbeInterval)
		fail(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDeadline):
		setRetryAfter(w, retryAfterOf(err))
		fail(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrNoWorkers):
		setRetryAfter(w, retryAfterOf(err))
		fail(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrClosed):
		fail(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		fail(w, http.StatusGatewayTimeout, "request timed out")
	case errors.Is(err, context.Canceled):
		fail(w, http.StatusRequestTimeout, "request canceled")
	default:
		fail(w, http.StatusBadRequest, err.Error())
	}
}

// handleSessionStep decodes one token for many sessions in a single
// request. The whole wave is handed to the session registry's step,
// which enqueues every entry on the continuous decode loop before one
// wakeup — so the wave (together with any other in-flight decode
// traffic) coalesces into shared dispatches with no goroutine per
// query. Results come back per entry, with per-entry errors so one
// evicted session cannot fail the rest of the wave. This is the
// interface a model runner stepping N sequences uses: one HTTP round
// trip per decode wave instead of one per token.
func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	var req SessionStepRequest
	meta, ok := decodeEnvelope(w, r, s.cfg.MaxBodyBytes, s.cfg.CompatLegacy, &req)
	if !ok {
		return
	}
	if len(req.Queries) == 0 {
		fail(w, http.StatusBadRequest, "step requires at least one query")
		return
	}
	for i := range req.Queries {
		q := &req.Queries[i]
		if q.QPacked != "" {
			if len(q.Q) != 0 {
				fail(w, http.StatusBadRequest, fmt.Sprintf("queries[%d] sets both q and qp", i))
				return
			}
			vec, err := client.UnpackVec(q.QPacked)
			if err != nil {
				fail(w, http.StatusBadRequest, fmt.Sprintf("queries[%d].qp: %v", i, err))
				return
			}
			q.Q = vec
		}
		if len(q.Q) == 0 {
			fail(w, http.StatusBadRequest, fmt.Sprintf("queries[%d].q must be non-empty", i))
			return
		}
	}
	timeout := s.cfg.RequestTimeout
	var deadline time.Time
	if meta.deadline > 0 {
		if meta.deadline < timeout {
			timeout = meta.deadline
		}
		deadline = time.Now().Add(meta.deadline)
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	entries := make([]stepEntry, len(req.Queries))
	for i := range req.Queries {
		q := &req.Queries[i]
		entries[i].ID = q.ID
		entries[i].Q = q.Q
		if err := checkWireBackend(q.Backend, 0); err != nil {
			entries[i].Err = err
		} else if q.Backend != elsa.BackendAuto && q.T != nil {
			entries[i].Err = errors.New("backend and t are mutually exclusive")
		}
		entries[i].Ov.Backend = q.Backend
		if q.T != nil {
			entries[i].Ov.Thr = &elsa.Threshold{T: *q.T}
		}
		// Quota is charged per query against each session's creator, the
		// same accounting as per-query decode; a shed entry fails alone.
		if s.quotas != nil {
			if clientID, _, err := s.sessions.meta(q.ID); err == nil {
				if admitted, _ := s.quotas.take(clientID); !admitted {
					s.metrics.ObserveAdmission("shed_quota")
					entries[i].Err = errors.New("client quota exhausted")
				}
			}
		}
	}
	s.sessions.step(ctx, entries, deadline)

	results := make([]SessionStepResult, len(entries))
	for i := range entries {
		e := &entries[i]
		if e.Err != nil {
			results[i].Error = e.Err.Error()
			continue
		}
		results[i].SessionQueryResponse = SessionQueryResponse{
			Candidates: e.Stats.Candidates,
			Fallback:   e.Stats.Fallback,
			Len:        e.Len,
			Threshold:  ThresholdJSON{P: e.Thr.P, T: e.Thr.T, Queries: e.Thr.Queries},
			BatchSize:  e.BatchSize,
		}
		if req.Packed {
			results[i].ContextPacked = client.PackVec(e.Out)
		} else {
			results[i].Context = e.Out
		}
	}
	writeJSON(w, http.StatusOK, SessionStepResponse{Results: results})
}

// handleSessionExport serializes a session's portable state: the stream
// blob plus engine configuration and operating point — everything the
// import endpoint needs to adopt it bit-identically elsewhere.
func (s *Server) handleSessionExport(w http.ResponseWriter, r *http.Request) {
	if !s.chargeSessionQuota(w, r.PathValue("id")) {
		return
	}
	resp, err := s.sessions.export(r.Context(), r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, errSessionNotFound):
		fail(w, http.StatusNotFound, err.Error())
	case errors.Is(err, errNotExportable):
		fail(w, http.StatusConflict, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		fail(w, http.StatusGatewayTimeout, "request timed out")
	case errors.Is(err, context.Canceled):
		fail(w, http.StatusRequestTimeout, "request canceled")
	default:
		fail(w, http.StatusInternalServerError, err.Error())
	}
}

// handleSessionImport adopts an exported session under its original ID —
// the receiving half of live migration. The state blob carries its own
// format version and an engine-config fingerprint, so a mismatched
// import fails loudly instead of decoding garbage.
func (s *Server) handleSessionImport(w http.ResponseWriter, r *http.Request) {
	var req SessionImportRequest
	meta, ok := decodeEnvelope(w, r, s.cfg.MaxBodyBytes, s.cfg.CompatLegacy, &req)
	if !ok {
		return
	}
	if s.draining.Load() {
		setRetryAfter(w, s.cfg.WorkerProbeInterval)
		fail(w, http.StatusServiceUnavailable, errDraining.Error())
		return
	}
	if strings.TrimSpace(req.ID) == "" {
		fail(w, http.StatusBadRequest, "id is required")
		return
	}
	if len(req.State) == 0 {
		fail(w, http.StatusBadRequest, "state is required")
		return
	}
	if req.HeadDim <= 0 {
		fail(w, http.StatusBadRequest, "head_dim must be > 0")
		return
	}
	if req.P < 0 {
		fail(w, http.StatusBadRequest, fmt.Sprintf("p must be >= 0, got %g", req.P))
		return
	}
	if err := checkWireBackend(req.Backend, req.P); err != nil {
		fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if admitted, wait := s.quotas.take(meta.clientID); !admitted {
		s.metrics.ObserveAdmission("shed_quota")
		setRetryAfter(w, wait)
		fail(w, http.StatusTooManyRequests, "client quota exhausted")
		return
	}
	opts := normalizeOptions(elsa.Options{
		HeadDim:   req.HeadDim,
		HashBits:  req.HashBits,
		Seed:      req.Seed,
		Quantized: req.Quantized,
	}, req.HeadDim)
	set, err := s.pool.get(opts)
	if err != nil {
		fail(w, http.StatusBadRequest, "engine: "+err.Error())
		return
	}
	var thr *elsa.Threshold
	if req.Threshold != nil {
		thr = &elsa.Threshold{P: req.Threshold.P, T: req.Threshold.T, Queries: req.Threshold.Queries}
	}
	n, err := s.sessions.adopt(set, opts, req.ID, req.State, req.P, thr, req.Backend, req.Capacity, meta)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, SessionImportResponse{ID: req.ID, Len: n})
	case errors.Is(err, errSessionExists):
		fail(w, http.StatusConflict, err.Error())
	case errors.Is(err, errSessionFull):
		fail(w, http.StatusRequestEntityTooLarge, err.Error())
	default:
		fail(w, http.StatusBadRequest, "import: "+err.Error())
	}
}

// spillLoop periodically pages idle sessions out to the state dir.
func (s *Server) spillLoop() {
	defer s.bg.Done()
	// Sweep a few times per idle threshold so a session spills soon after
	// crossing it, without busy-scanning the registry.
	interval := s.sessions.spillAfter / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-tick.C:
			s.sessions.spillIdle()
		}
	}
}

// mirrorLoop drains the registry's mirror-flush queue: each queued
// session gets its pending worker-accepted appends replayed onto its
// local shadow off the append critical path.
func (s *Server) mirrorLoop() {
	defer s.bg.Done()
	for {
		select {
		case <-s.stopc:
			return
		case sess := <-s.sessions.mirrorc:
			s.sessions.flushMirror(sess, s.stopc)
		}
	}
}

// handleClusterJoin admits or refreshes a fleet member: workers POST
// here to register (and then keep heartbeating through the same
// endpoint). The worker starts receiving one-shot traffic after its
// first successful probe and session placements once active on the ring
// — no frontend restart involved.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if _, ok := decodeEnvelope(w, r, s.cfg.MaxBodyBytes, s.cfg.CompatLegacy, &req); !ok {
		return
	}
	if strings.TrimSpace(req.Addr) == "" {
		fail(w, http.StatusBadRequest, "addr is required")
		return
	}
	if req.Weight < 0 || req.HeartbeatMS < 0 {
		fail(w, http.StatusBadRequest, "weight and heartbeat_ms must be >= 0")
		return
	}
	addr := normalizeWorkerAddr(strings.TrimSpace(req.Addr))
	interval := time.Duration(req.HeartbeatMS) * time.Millisecond
	capacity := cluster.Capacity{Weight: req.Weight, MaxSessions: req.MaxSessions}
	state, changed := s.cluster.join(addr, capacity, interval, req.Draining)
	s.metrics.ObserveClusterJoin(changed)
	counts := s.cluster.table.Counts()
	writeJSON(w, http.StatusOK, JoinResponse{
		State:   state.String(),
		Members: counts[cluster.StateJoining] + counts[cluster.StateActive] + counts[cluster.StateDraining],
		Version: s.cluster.table.Version(),
	})
}

// handleClusterList serves the versioned cluster view: the `signals`
// block (windowed load signals an autoscale controller acts on) and the
// `targets` block (per-member placement state, including how many
// sessions this frontend still holds pinned to each — the number an
// operator watches reach zero during a drain). The legacy top-level
// members/queue_depth_by_class/sheds_by_class fields are still emitted
// for pre-v1 clients.
func (s *Server) handleClusterList(w http.ResponseWriter, _ *http.Request) {
	version, members := s.cluster.table.Snapshot()
	pinned := s.sessions.pinnedCounts()
	now := time.Now()
	resp := ClusterResponse{
		SchemaVersion: ClusterSchemaVersion,
		Version:       version,
		Targets:       make([]ClusterTargetJSON, 0, len(members)),
		Members:       make([]ClusterMemberJSON, 0, len(members)),
	}
	for _, m := range members {
		age := int64(-1)
		if !m.LastHeartbeat.IsZero() {
			age = now.Sub(m.LastHeartbeat).Milliseconds()
		}
		t := ClusterTargetJSON{
			Addr:           m.Addr,
			State:          m.State.String(),
			Static:         m.Static,
			Weight:         m.Weight,
			MaxSessions:    m.MaxSessions,
			HeartbeatAgeMS: age,
			PinnedSessions: pinned[m.Addr],
		}
		resp.Targets = append(resp.Targets, t)
		resp.Members = append(resp.Members, ClusterMemberJSON(t))
	}
	sort.Slice(resp.Targets, func(i, j int) bool { return resp.Targets[i].Addr < resp.Targets[j].Addr })
	sort.Slice(resp.Members, func(i, j int) bool { return resp.Members[i].Addr < resp.Members[j].Addr })
	depths := s.metrics.QueueDepthsByClass()
	var total int64
	for _, n := range depths {
		total += n
	}
	resp.Signals = ClusterSignalsJSON{
		QueueDepth:        total,
		QueueDepthByClass: depths,
		ShedRateByClass:   s.metrics.ShedRates(),
		ShedsByClass:      s.metrics.ShedsByClass(),
		MeanBatch:         s.metrics.MeanBatchSize(),
		MeanDecodeBatch:   s.metrics.MeanDecodeBatchSize(),
	}
	resp.QueueDepthByClass = depths
	resp.ShedsByClass = resp.Signals.ShedsByClass
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterRebalance proactively migrates pinned sessions toward one
// member — the scale-out complement of drain. Sessions whose consistent-
// hash placement now prefers the target (typically because it just
// joined the ring) are live-migrated onto it through the same
// export/import path drain uses; sessions the ring still places
// elsewhere stay put, so repeated rebalances converge instead of
// thrashing.
func (s *Server) handleClusterRebalance(w http.ResponseWriter, r *http.Request) {
	var req ClusterRebalanceRequest
	if _, ok := decodeEnvelope(w, r, s.cfg.MaxBodyBytes, s.cfg.CompatLegacy, &req); !ok {
		return
	}
	if strings.TrimSpace(req.Addr) == "" {
		fail(w, http.StatusBadRequest, "addr is required")
		return
	}
	addr := normalizeWorkerAddr(strings.TrimSpace(req.Addr))
	m, ok := s.cluster.table.Get(addr)
	if !ok {
		fail(w, http.StatusNotFound, "unknown member: "+addr)
		return
	}
	if m.State != cluster.StateActive {
		fail(w, http.StatusConflict, "member is "+m.State.String()+", not an active rebalance target")
		return
	}
	moved := s.sessions.rebalance(r.Context(), addr, req.Max)
	writeJSON(w, http.StatusOK, ClusterRebalanceResponse{
		Addr:           addr,
		Moved:          moved,
		PinnedSessions: s.sessions.pinnedCounts()[addr],
	})
}

// handleClusterDrain starts a rolling-upgrade drain of one member: it
// leaves the ring immediately (no new sessions, no new one-shot
// routing), sessions still pinned to it are live-migrated onto other
// members right away instead of being waited out, and the drain signal
// is forwarded to the worker's own /v1/drain. A member holding zero
// pinned sessions completes immediately — the forward happens in the
// background so the reply never waits on an unreachable worker.
func (s *Server) handleClusterDrain(w http.ResponseWriter, r *http.Request) {
	var req ClusterDrainRequest
	if _, ok := decodeEnvelope(w, r, s.cfg.MaxBodyBytes, s.cfg.CompatLegacy, &req); !ok {
		return
	}
	if strings.TrimSpace(req.Addr) == "" {
		fail(w, http.StatusBadRequest, "addr is required")
		return
	}
	addr := normalizeWorkerAddr(strings.TrimSpace(req.Addr))
	if _, ok := s.cluster.table.Get(addr); !ok {
		fail(w, http.StatusNotFound, "unknown member: "+addr)
		return
	}
	s.cluster.markDraining(addr)
	pinned := s.sessions.pinnedCounts()[addr]
	relocated := 0
	forwarded := false
	wk := s.fleet.get(addr)
	if pinned > 0 {
		relocated = s.sessions.relocate(r.Context(), addr)
		if wk != nil {
			ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
			defer cancel()
			if _, err := wk.cli.Drain(ctx); err == nil {
				forwarded = true
			}
		}
	} else if wk != nil {
		// Nothing to relocate: reply now and forward the drain signal
		// off-request. The goroutine shares nothing mutable (wk.cli is
		// immutable) and self-terminates on its own timeout, so it is not
		// tracked by s.bg.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			wk.cli.Drain(ctx) //nolint:errcheck // best effort; frontend drain holds regardless
		}()
	}
	writeJSON(w, http.StatusOK, ClusterDrainResponse{
		Addr:           addr,
		State:          cluster.StateDraining.String(),
		Forwarded:      forwarded,
		PinnedSessions: pinned,
		Relocated:      relocated,
	})
}

// handleDrain puts this server into drain mode: new sessions are
// refused with 503 + Retry-After, existing sessions (and the one-shot
// path serving them) continue, healthz flips to "draining", and after
// DrainTimeout any sessions still alive are force-expired. Idempotent —
// re-POSTing reports progress.
func (s *Server) handleDrain(w http.ResponseWriter, _ *http.Request) {
	if !s.draining.Swap(true) {
		s.bg.Add(1)
		go s.drainWatch()
	}
	writeJSON(w, http.StatusOK, DrainResponse{Draining: true, Sessions: s.sessions.active()})
}

// drainWatch waits for the drain to complete: all sessions gone, the
// timeout force-expiring the stragglers, or server shutdown.
func (s *Server) drainWatch() {
	defer s.bg.Done()
	var deadline <-chan time.Time
	if s.cfg.DrainTimeout > 0 {
		t := time.NewTimer(s.cfg.DrainTimeout)
		defer t.Stop()
		deadline = t.C
	}
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-deadline:
			s.sessions.evictAll("drain")
			return
		case <-tick.C:
			if s.sessions.active() == 0 {
				return
			}
		}
	}
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	switch err := s.sessions.remove(r.PathValue("id")); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, errSessionNotFound):
		fail(w, http.StatusNotFound, err.Error())
	default:
		fail(w, http.StatusInternalServerError, err.Error())
	}
}

// chargeSessionQuota charges one op against the quota of the client that
// created the session — sessions inherit their creator's class and count
// against its budget, so a flood of decode steps cannot bypass the
// per-client gate. An unknown session is not charged; the handler's own
// lookup answers 404. Returns false after answering 429 itself.
func (s *Server) chargeSessionQuota(w http.ResponseWriter, id string) bool {
	if s.quotas == nil {
		return true
	}
	clientID, _, err := s.sessions.meta(id)
	if err != nil {
		return true
	}
	if admitted, wait := s.quotas.take(clientID); !admitted {
		s.metrics.ObserveAdmission("shed_quota")
		setRetryAfter(w, wait)
		fail(w, http.StatusTooManyRequests, "client quota exhausted")
		return false
	}
	return true
}

// setRetryAfter surfaces a shed op's backoff hint in whole seconds
// (minimum 1 — Retry-After has no sub-second form).
func setRetryAfter(w http.ResponseWriter, wait time.Duration) {
	secs := int64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func fail(w http.ResponseWriter, code int, msg string) int {
	return writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone mid-write
	return code
}
