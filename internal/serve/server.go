package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"elsa"
)

// Config tunes the serving subsystem. Zero values select production-safe
// defaults.
type Config struct {
	// BatchWindow is how long the scheduler holds the first request of a
	// micro-batch open for followers (default 2ms).
	BatchWindow time.Duration
	// MaxBatch dispatches a batch early once this many ops have coalesced
	// (default 64).
	MaxBatch int
	// MaxQueue bounds requests resident in the scheduler; beyond it
	// submissions fail with ErrQueueFull / HTTP 429 (default 256).
	MaxQueue int
	// Workers is the AttendBatch worker count per dispatched batch
	// (default: GOMAXPROCS via elsa).
	Workers int
	// RequestTimeout bounds one request's queue + compute time
	// (default 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds the /v1/attend request body (default 32 MiB).
	MaxBodyBytes int64
}

func (c *Config) setDefaults() {
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
}

// Server is the attention-serving subsystem: an http.Handler exposing
// POST /v1/attend, GET /v1/healthz and GET /v1/metrics over a shared
// engine pool and micro-batching scheduler.
type Server struct {
	cfg     Config
	pool    *enginePool
	sched   *scheduler
	metrics *Metrics
	mux     *http.ServeMux
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg.setDefaults()
	m := NewMetrics()
	s := &Server{
		cfg:     cfg,
		pool:    newEnginePool(),
		sched:   newScheduler(cfg.BatchWindow, cfg.MaxBatch, cfg.MaxQueue, cfg.Workers, m),
		metrics: m,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/attend", s.handleAttend)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the server's metric registry (used by tests and the
// command's logging).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close drains the scheduler: admission stops, pending micro-batches
// dispatch immediately, and Close returns once every in-flight batch has
// delivered its results. Call after http.Server.Shutdown so no handler is
// left waiting.
func (s *Server) Close() {
	s.sched.close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Engines: s.pool.size()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.metrics.SetEngines(s.pool.size())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w) //nolint:errcheck // best effort: client gone mid-scrape
}

func (s *Server) handleAttend(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code, reason := s.attend(w, r)
	if reason != "" {
		s.metrics.ObserveRejection(reason)
	}
	s.metrics.ObserveRequest(code, time.Since(start).Seconds())
}

// attend runs one request end to end and returns the HTTP status it
// answered with plus a rejection reason ("" when the op was served).
func (s *Server) attend(w http.ResponseWriter, r *http.Request) (int, string) {
	var req AttendRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return fail(w, http.StatusBadRequest, "invalid JSON body: "+err.Error()), "bad_request"
	}
	if err := req.validate(); err != nil {
		return fail(w, http.StatusBadRequest, err.Error()), "bad_request"
	}

	entry, err := s.pool.get(req.options())
	if err != nil {
		return fail(w, http.StatusBadRequest, "engine: "+err.Error()), "bad_request"
	}
	var thr elsa.Threshold
	if req.T != nil {
		thr = elsa.Threshold{P: req.P, T: *req.T}
	} else if thr, err = entry.threshold(req.P, req.Q, req.K); err != nil {
		return fail(w, http.StatusBadRequest, "calibrate: "+err.Error()), "bad_request"
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	out, batchSize, err := s.sched.submit(ctx, batchKey{entry: entry, thr: thr},
		elsa.BatchOp{Q: req.Q, K: req.K, V: req.V})
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		return fail(w, http.StatusTooManyRequests, err.Error()), "queue_full"
	case errors.Is(err, ErrClosed):
		return fail(w, http.StatusServiceUnavailable, err.Error()), "closed"
	case errors.Is(err, context.DeadlineExceeded):
		return fail(w, http.StatusGatewayTimeout, "request timed out"), "timeout"
	case errors.Is(err, context.Canceled):
		// Client went away; nobody reads the body, but account for it.
		return fail(w, http.StatusRequestTimeout, "request canceled"), "canceled"
	default:
		return fail(w, http.StatusInternalServerError, err.Error()), "internal"
	}

	return writeJSON(w, http.StatusOK, AttendResponse{
		Context:           out.Context,
		CandidateFraction: out.CandidateFraction,
		FallbackQueries:   out.FallbackQueries,
		Threshold:         ThresholdJSON{P: thr.P, T: thr.T, Queries: thr.Queries},
		BatchSize:         batchSize,
	}), ""
}

func fail(w http.ResponseWriter, code int, msg string) int {
	return writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone mid-write
	return code
}
