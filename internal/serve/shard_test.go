package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"elsa"
)

// TestShardRoutingFairness drives many single-op batches at one engine
// configuration and checks the dispatcher actually spreads them across
// the configuration's replicas rather than pinning one shard.
func TestShardRoutingFairness(t *testing.T) {
	srv := New(Config{
		BatchWindow: 100 * time.Microsecond,
		MaxBatch:    1, // every request dispatches as its own batch
		MaxQueue:    1024,
		Replicas:    3,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(29))
	q, k, v := genOp(rng, 2, 8)
	req := AttendRequest{Q: q, K: k, V: v, HeadDim: testDim, Seed: testSeed}

	const requests = 30
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := postAttend(t, ts.Client(), ts.URL, req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, raw)
			}
		}()
	}
	wg.Wait()

	perShard := srv.Metrics().ShardBatches()
	var total int64
	busy := 0
	for _, n := range perShard {
		total += n
		if n > 0 {
			busy++
		}
	}
	if total != requests {
		t.Errorf("shard batches sum to %d, want %d", total, requests)
	}
	if busy < 2 {
		t.Errorf("only %d shard(s) executed batches (%v), want >= 2 of %d replicas",
			busy, perShard, 3)
	}
}

// TestMixedThresholdsShareDispatch checks ops pinned to different
// operating points still coalesce into one micro-batch — each op carries
// its own threshold — and each comes back identical to an unbatched
// Attend at that op's threshold.
func TestMixedThresholdsShareDispatch(t *testing.T) {
	srv := New(Config{
		BatchWindow: 300 * time.Millisecond,
		MaxBatch:    64,
		MaxQueue:    64,
		Replicas:    1,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	eng, err := elsa.New(elsa.Options{HeadDim: testDim, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	thresholds := []float64{0.15, 0.75}
	type result struct {
		got  AttendResponse
		want *elsa.Output
		code int
	}
	results := make([]result, len(thresholds))
	var wg sync.WaitGroup
	for i, tv := range thresholds {
		q, k, v := genOp(rng, 3, 24)
		want, err := eng.Attend(q, k, v, elsa.Threshold{P: 1, T: tv})
		if err != nil {
			t.Fatal(err)
		}
		results[i].want = want
		tv := tv
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := AttendRequest{Q: q, K: k, V: v, HeadDim: testDim, Seed: testSeed, P: 1, T: &tv}
			resp, raw := postAttend(t, ts.Client(), ts.URL, req)
			results[i].code = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(raw, &results[i].got); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("op %d: status %d", i, r.code)
		}
		if r.got.BatchSize != len(thresholds) {
			t.Errorf("op %d: batch size %d, want %d (mixed thresholds must share one dispatch)",
				i, r.got.BatchSize, len(thresholds))
		}
		if r.got.Threshold.T != thresholds[i] {
			t.Errorf("op %d: threshold %g echoed, want %g", i, r.got.Threshold.T, thresholds[i])
		}
		if r.got.CandidateFraction != r.want.CandidateFraction {
			t.Errorf("op %d: candidate fraction %g, want %g (per-op threshold not applied)",
				i, r.got.CandidateFraction, r.want.CandidateFraction)
		}
		for qi := range r.got.Context {
			for j := range r.got.Context[qi] {
				if r.got.Context[qi][j] != r.want.Context[qi][j] {
					t.Fatalf("op %d: output differs from unbatched Attend at %d,%d", i, qi, j)
				}
			}
		}
	}
}

// TestStatePersistenceAcrossRestart calibrates a threshold under one
// server, restarts with the same state dir, and checks the second server
// serves its first calibrated request from disk without recalibrating.
func TestStatePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(37))
	q, k, v := genOp(rng, 4, 32)
	req := AttendRequest{Q: q, K: k, V: v, HeadDim: testDim, Seed: testSeed, P: 1}

	serveOnce := func() (AttendResponse, *Metrics) {
		srv := New(Config{BatchWindow: time.Millisecond, StateDir: dir})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		resp, raw := postAttend(t, ts.Client(), ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		var got AttendResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		return got, srv.Metrics()
	}

	first, m1 := serveOnce()
	if m1.Calibrations() != 1 || m1.ThresholdLoads() != 0 {
		t.Fatalf("first server: %d calibrations / %d loads, want 1/0",
			m1.Calibrations(), m1.ThresholdLoads())
	}
	second, m2 := serveOnce()
	if m2.Calibrations() != 0 {
		t.Errorf("restarted server recalibrated %d time(s); the state dir should have served it",
			m2.Calibrations())
	}
	if m2.ThresholdLoads() != 1 {
		t.Errorf("restarted server loaded %d thresholds from disk, want 1", m2.ThresholdLoads())
	}
	if first.Threshold != second.Threshold {
		t.Errorf("threshold changed across restart: %+v vs %+v", first.Threshold, second.Threshold)
	}
}
