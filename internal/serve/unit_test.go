package serve

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"elsa"
)

// newTestStack builds a pool + dispatcher pair and tears the shard loops
// down with the test.
func newTestStack(t *testing.T, replicas, maxEntries int, window time.Duration, maxBatch, maxQueue int) (*enginePool, *dispatcher, *Metrics) {
	t.Helper()
	m := NewMetrics()
	d := newDispatcher(window, maxBatch, maxQueue, 0, 2, time.Second, classWeights{}, m)
	p := newEnginePool(replicas, maxEntries, d, newWorkerSet(nil, time.Second, 1, 3, m), m)
	t.Cleanup(func() {
		d.close()
		p.closeShards()
		d.waitShards()
	})
	return p, d, m
}

func TestNormalizeOptions(t *testing.T) {
	got := normalizeOptions(elsa.Options{}, 16)
	if got.HeadDim != 16 || got.HashBits != 16 {
		t.Errorf("head dim should default to the query width: %+v", got)
	}
	if got.Hardware != elsa.DefaultHardware() {
		t.Error("zero hardware should normalize to the default")
	}
	got = normalizeOptions(elsa.Options{}, 0)
	if got.HeadDim != 64 {
		t.Errorf("with no query width the paper default 64 applies, got %d", got.HeadDim)
	}
	got = normalizeOptions(elsa.Options{HeadDim: 32, HashBits: 8}, 16)
	if got.HeadDim != 32 || got.HashBits != 8 {
		t.Errorf("explicit fields must survive normalization: %+v", got)
	}
}

func TestEnginePoolReusesAndRetriesFailures(t *testing.T) {
	p, _, _ := newTestStack(t, 2, 8, time.Millisecond, 64, 64)
	a, err := p.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: 1}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.engines) != 2 || len(a.shards()) != 2 {
		t.Fatalf("replica set has %d engines / %d shards, want 2/2", len(a.engines), len(a.shards()))
	}
	b, err := p.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: 1}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same options must return the same pooled replica set")
	}
	c, err := p.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: 2}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different seed must build a different replica set")
	}
	if p.size() != 2 {
		t.Errorf("pool size %d, want 2", p.size())
	}
	// A bad config fails but must NOT occupy a pool slot: the next get for
	// the same key retries construction instead of serving a cached error.
	if _, err := p.get(elsa.Options{HeadDim: -1}); err == nil {
		t.Fatal("negative head dim should fail")
	}
	if p.size() != 2 {
		t.Errorf("pool size %d after failed build, want 2 (failure must free its slot)", p.size())
	}
	if _, err := p.get(elsa.Options{HeadDim: -1}); err == nil {
		t.Fatal("retried bad config should fail again")
	}
}

func TestEnginePoolLRUEviction(t *testing.T) {
	p, _, m := newTestStack(t, 1, 2, time.Millisecond, 64, 64)
	optsFor := func(seed int64) elsa.Options {
		return normalizeOptions(elsa.Options{HeadDim: testDim, Seed: seed}, testDim)
	}
	a, err := p.get(optsFor(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.get(optsFor(2)); err != nil {
		t.Fatal(err)
	}
	// Touch seed 1 so seed 2 is now least recently used.
	if _, err := p.get(optsFor(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.get(optsFor(3)); err != nil {
		t.Fatal(err)
	}
	if p.size() != 2 {
		t.Fatalf("pool size %d, want 2 (bounded)", p.size())
	}
	if m.EngineEvictions() != 1 {
		t.Errorf("engine evictions %d, want 1", m.EngineEvictions())
	}
	// Seed 1 must have survived (it was touched); a re-get returns the same
	// set without rebuilding. Seed 2 was evicted and rebuilds fresh.
	a2, err := p.get(optsFor(1))
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Error("recently-used set was evicted instead of the LRU one")
	}
	if _, err := p.get(optsFor(2)); err != nil {
		t.Fatal(err)
	}
	if m.EngineEvictions() != 2 {
		t.Errorf("engine evictions %d after refetching evicted key, want 2", m.EngineEvictions())
	}
}

func TestDispatcherCanceledContext(t *testing.T) {
	p, d, _ := newTestStack(t, 1, 8, time.Hour, 64, 8)
	set, err := p.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: testSeed}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(3))
	q, k, v := genOp(rng, 2, 4)
	_, _, _, err = d.submit(ctx, set, elsa.BatchOp{Q: q, K: k, V: v}, elsa.Exact(), ClassInteractive, time.Time{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDispatcherRefusesWhenClosed(t *testing.T) {
	p, d, _ := newTestStack(t, 1, 8, time.Millisecond, 64, 8)
	set, err := p.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: testSeed}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	d.close()
	rng := rand.New(rand.NewSource(4))
	q, k, v := genOp(rng, 2, 4)
	_, _, _, err = d.submit(context.Background(), set, elsa.BatchOp{Q: q, K: k, V: v}, elsa.Exact(), ClassInteractive, time.Time{})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	d.close() // idempotent
}

func TestMaxBatchDispatchesEarly(t *testing.T) {
	// An hour-long window: only the max-batch fast path can dispatch.
	p, d, m := newTestStack(t, 1, 8, time.Hour, 2, 16)
	set, err := p.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: testSeed}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		q, k, v := genOp(rng, 2, 4)
		go func() {
			_, _, _, err := d.submit(context.Background(), set, elsa.BatchOp{Q: q, K: k, V: v}, elsa.Exact(), ClassInteractive, time.Time{})
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("full batch never dispatched before the window")
		}
	}
	if mean := m.MeanBatchSize(); mean != 2 {
		t.Errorf("mean batch size %g, want exactly 2", mean)
	}
}

func TestMetricsHistogramRendering(t *testing.T) {
	m := NewMetrics()
	m.ObserveBatch(1)
	m.ObserveBatch(3)
	m.ObserveBatch(300) // beyond the last bound → +Inf bucket
	m.ObserveShardBatch(0, 1)
	m.ObserveShardBatch(1, 3)
	m.ObserveSessionCreated()
	m.ObserveSessionEvicted("ttl")
	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`elsa_serve_batch_size_bucket{le="1"} 1`,
		`elsa_serve_batch_size_bucket{le="4"} 2`,
		`elsa_serve_batch_size_bucket{le="256"} 2`,
		`elsa_serve_batch_size_bucket{le="+Inf"} 3`,
		"elsa_serve_batch_size_sum 304",
		"elsa_serve_batch_size_count 3",
		"elsa_serve_batch_ops_total 304",
		`elsa_serve_shard_batches_total{shard="0"} 1`,
		`elsa_serve_shard_batches_total{shard="1"} 1`,
		`elsa_serve_shard_ops_total{shard="1"} 3`,
		"elsa_serve_sessions 0",
		"elsa_serve_sessions_created_total 1",
		`elsa_serve_session_evictions_total{reason="ttl"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
	if m.MeanBatchSize() != 304.0/3 {
		t.Errorf("mean batch size %g", m.MeanBatchSize())
	}
}
