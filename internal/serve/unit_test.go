package serve

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"elsa"
)

func TestNormalizeOptions(t *testing.T) {
	got := normalizeOptions(elsa.Options{}, 16)
	if got.HeadDim != 16 || got.HashBits != 16 {
		t.Errorf("head dim should default to the query width: %+v", got)
	}
	if got.Hardware != elsa.DefaultHardware() {
		t.Error("zero hardware should normalize to the default")
	}
	got = normalizeOptions(elsa.Options{}, 0)
	if got.HeadDim != 64 {
		t.Errorf("with no query width the paper default 64 applies, got %d", got.HeadDim)
	}
	got = normalizeOptions(elsa.Options{HeadDim: 32, HashBits: 8}, 16)
	if got.HeadDim != 32 || got.HashBits != 8 {
		t.Errorf("explicit fields must survive normalization: %+v", got)
	}
}

func TestEnginePoolReusesAndCachesFailures(t *testing.T) {
	p := newEnginePool()
	a, err := p.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: 1}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: 1}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same options must return the same pooled entry")
	}
	c, err := p.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: 2}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different seed must build a different engine")
	}
	if p.size() != 2 {
		t.Errorf("pool size %d, want 2", p.size())
	}
	// A bad config fails, and fails again from cache without rebuilding.
	if _, err := p.get(elsa.Options{HeadDim: -1}); err == nil {
		t.Fatal("negative head dim should fail")
	}
	if _, err := p.get(elsa.Options{HeadDim: -1}); err == nil {
		t.Fatal("cached failure should still fail")
	}
	if p.size() != 3 {
		t.Errorf("pool size %d, want 3 (failed entry occupies its key)", p.size())
	}
}

func TestSchedulerCanceledContext(t *testing.T) {
	pool := newEnginePool()
	entry, err := pool.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: testSeed}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	s := newScheduler(time.Hour, 64, 8, 0, NewMetrics())
	defer s.close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(3))
	q, k, v := genOp(rng, 2, 4)
	_, _, err = s.submit(ctx, batchKey{entry: entry, thr: elsa.Exact()}, elsa.BatchOp{Q: q, K: k, V: v})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSchedulerRefusesWhenClosed(t *testing.T) {
	pool := newEnginePool()
	entry, err := pool.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: testSeed}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	s := newScheduler(time.Millisecond, 64, 8, 0, NewMetrics())
	s.close()
	rng := rand.New(rand.NewSource(4))
	q, k, v := genOp(rng, 2, 4)
	_, _, err = s.submit(context.Background(), batchKey{entry: entry, thr: elsa.Exact()}, elsa.BatchOp{Q: q, K: k, V: v})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	s.close() // idempotent
}

func TestMaxBatchDispatchesEarly(t *testing.T) {
	pool := newEnginePool()
	entry, err := pool.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: testSeed}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	// An hour-long window: only the max-batch fast path can dispatch.
	s := newScheduler(time.Hour, 2, 16, 0, m)
	defer s.close()
	rng := rand.New(rand.NewSource(5))
	key := batchKey{entry: entry, thr: elsa.Exact()}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		q, k, v := genOp(rng, 2, 4)
		go func() {
			_, _, err := s.submit(context.Background(), key, elsa.BatchOp{Q: q, K: k, V: v})
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("full batch never dispatched before the window")
		}
	}
	if mean := m.MeanBatchSize(); mean != 2 {
		t.Errorf("mean batch size %g, want exactly 2", mean)
	}
}

func TestMetricsHistogramRendering(t *testing.T) {
	m := NewMetrics()
	m.ObserveBatch(1)
	m.ObserveBatch(3)
	m.ObserveBatch(300) // beyond the last bound → +Inf bucket
	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`elsa_serve_batch_size_bucket{le="1"} 1`,
		`elsa_serve_batch_size_bucket{le="4"} 2`,
		`elsa_serve_batch_size_bucket{le="256"} 2`,
		`elsa_serve_batch_size_bucket{le="+Inf"} 3`,
		"elsa_serve_batch_size_sum 304",
		"elsa_serve_batch_size_count 3",
		"elsa_serve_batch_ops_total 304",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
	if m.MeanBatchSize() != 304.0/3 {
		t.Errorf("mean batch size %g", m.MeanBatchSize())
	}
}
