package serve_test

// End-to-end autoscale-loop suite: a real autoscale.Controller drives a
// servetest fake fleet through the frontend's versioned cluster API —
// load ramp to scale-out advice, joiner absorption via rebalance, idle
// scale-in via drain — with every session answer bit-identical to an
// undisturbed single-host reference and zero non-drain 5xx. Run under
// -race by ci.sh.

import (
	"context"
	"sync"
	"testing"
	"time"

	"elsa"
	"elsa/internal/serve"
	"elsa/internal/serve/autoscale"
	"elsa/internal/serve/servetest"
	"elsa/serve/client"
)

// TestAutoscaleLoadRampAdvisesScaleOut holds a ramp of concurrent attends
// against a deliberately slow one-worker fleet and requires the
// controller to surface scale-out advice from the real queue-depth
// signal — while every op still completes bit-identical to single-host.
func TestAutoscaleLoadRampAdvisesScaleOut(t *testing.T) {
	ops := rtOps(24)
	want := singleHostResults(t, ops)

	front := dynamicFront()
	front.MaxBatch = 2 // small batches stack up behind the slow worker
	cl := servetest.NewDynamicCluster(front)
	defer cl.Close()
	w, err := cl.AddWorker(dynamicWorker(), 25*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	w.SetLatency(30 * time.Millisecond)

	ctl := autoscale.NewController(cl.URL())
	ctl.Policy = autoscale.New(autoscale.Config{
		ScaleOutQueue: 4,
		HoldSteps:     2,
		CooldownSteps: 2,
	})
	scaleOut := make(chan autoscale.Advice, 1)
	ctl.OnScaleOut = func(adv autoscale.Advice) {
		select {
		case scaleOut <- adv:
		default:
		}
	}

	c := client.New(cl.URL())
	var wg sync.WaitGroup
	errs := make([]error, len(ops))
	got := make([]*client.Result, len(ops))
	for i := range ops {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = c.Attend(context.Background(), ops[i][0], ops[i][1], ops[i][2],
				client.AttendOptions{HeadDim: rtDim})
		}(i)
	}

	// Step the controller on a tight cadence while the ramp is in flight:
	// the hot band must hold and fire before the queue drains.
	deadline := time.Now().Add(10 * time.Second)
	fired := false
	for !fired && time.Now().Before(deadline) {
		if _, err := ctl.Step(context.Background()); err != nil {
			t.Fatalf("controller step during ramp: %v", err)
		}
		select {
		case adv := <-scaleOut:
			if adv.Action != autoscale.ActionScaleOut {
				t.Fatalf("OnScaleOut saw %s, want scale-out", adv)
			}
			fired = true
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	wg.Wait()
	if !fired {
		t.Fatal("load ramp never produced scale-out advice")
	}
	for i := range ops {
		if errs[i] != nil {
			t.Fatalf("op %d failed during ramp: %v", i, errs[i])
		}
		if !sameContext(got[i], want[i]) {
			t.Fatalf("op %d: result under autoscale load ramp differs from single-host", i)
		}
	}
}

// TestAutoscaleJoinerRebalanceThenIdleDrain runs the whole closed loop on
// a fake fleet: pinned sessions on one worker, a joiner arrives, the
// controller rebalances sessions onto it, and once the fleet idles the
// cold band drains a member — with session answers bit-identical to a
// standalone reference before, during, and after, and no call anywhere
// failing (zero non-drain 5xx).
func TestAutoscaleJoinerRebalanceThenIdleDrain(t *testing.T) {
	cl := servetest.NewDynamicCluster(dynamicFront())
	defer cl.Close()
	if _, err := cl.AddWorker(dynamicWorker(), 25*time.Millisecond, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Reference standalone server mirrors every session op bit-exactly.
	ref := servetest.NewWorker(serve.Config{BatchWindow: time.Millisecond, Replicas: 1})
	defer ref.Close()
	refCli := client.New(ref.URL())

	c := client.New(cl.URL())
	type pair struct{ sess, mirror *client.Session }
	var pairs []pair
	key := func(i, j int) []float32 {
		v := make([]float32, rtDim)
		v[i%rtDim] = 1
		v[(i+j)%rtDim] = 0.5
		return v
	}
	for i := 0; i < 12; i++ {
		s, err := c.NewSession(context.Background(), client.SessionOptions{HeadDim: rtDim, Seed: 11})
		if err != nil {
			t.Fatalf("session create %d: %v", i, err)
		}
		m, err := refCli.NewSession(context.Background(), client.SessionOptions{HeadDim: rtDim, Seed: 11})
		if err != nil {
			t.Fatalf("reference session create %d: %v", i, err)
		}
		pairs = append(pairs, pair{s, m})
	}
	stepAll := func(round int) {
		t.Helper()
		for i, p := range pairs {
			k := key(i, round)
			if _, err := p.sess.Append(context.Background(), k, k); err != nil {
				t.Fatalf("append session %d round %d: %v", i, round, err)
			}
			if _, err := p.mirror.Append(context.Background(), k, k); err != nil {
				t.Fatalf("append mirror %d round %d: %v", i, round, err)
			}
			got, err := p.sess.Query(context.Background(), k, elsa.Overrides{})
			if err != nil {
				t.Fatalf("query session %d round %d: %v", i, round, err)
			}
			wantQ, err := p.mirror.Query(context.Background(), k, elsa.Overrides{})
			if err != nil {
				t.Fatalf("query mirror %d round %d: %v", i, round, err)
			}
			for j := range wantQ.Context {
				if got.Context[j] != wantQ.Context[j] {
					t.Fatalf("session %d round %d: context[%d] = %v, want %v (not bit-identical)",
						i, round, j, got.Context[j], wantQ.Context[j])
				}
			}
		}
	}
	pinnedOn := func() map[string]int {
		t.Helper()
		view, err := c.Cluster(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int{}
		for _, m := range view.Members {
			out[m.Addr] = m.PinnedSessions
		}
		return out
	}
	stepAll(0)

	joiner, err := cl.AddWorker(dynamicWorker(), 25*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := pinnedOn()[joiner.URL()]; got != 0 {
		t.Fatalf("joiner holds %d sessions before any rebalance", got)
	}

	// Drive the controller exactly as elsactl would. The imbalance band
	// fires a rebalance toward the joiner; once balanced (or settled), the
	// idle fleet builds a cold streak and the controller drains a member.
	ctl := autoscale.NewController(cl.URL())
	ctl.Policy = autoscale.New(autoscale.Config{HoldSteps: 2, CooldownSteps: 1})
	var rebalanced, drained bool
	var drainTarget string
	ctl.OnAdvice = func(adv autoscale.Advice, err error) {
		if err != nil {
			t.Errorf("apply %s: %v", adv, err)
		}
		switch adv.Action {
		case autoscale.ActionRebalance:
			rebalanced = true
		case autoscale.ActionScaleIn:
			drained = true
			drainTarget = adv.Target
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for !drained && time.Now().Before(deadline) {
		if _, err := ctl.Step(context.Background()); err != nil {
			t.Fatalf("controller step: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !rebalanced {
		t.Fatal("controller never issued a rebalance toward the joiner")
	}
	if !drained {
		t.Fatal("idle fleet never triggered a scale-in drain")
	}

	// Sessions landed on the joiner before the drain reshuffled them.
	if pinnedOn()[joiner.URL()] == 0 && drainTarget != joiner.URL() {
		t.Errorf("rebalance fired but no session ever landed on the joiner")
	}
	if err := cl.WaitState(drainTarget, "draining", 5*time.Second); err != nil {
		// The drain relocates fast; the member may already be past
		// draining. Either state proves the controller acted.
		if werr := cl.WaitState(drainTarget, "gone", time.Second); werr != nil {
			t.Fatalf("drained member never left active: %v", err)
		}
	}

	// Every session keeps answering bit-identically through and after the
	// controller-driven drain — relocations included.
	stepAll(1)
	stepAll(2)

	// Fresh sessions still place (on whatever remains active) without a
	// single 5xx at the frontend.
	for i := 0; i < 8; i++ {
		if _, err := c.NewSession(context.Background(), client.SessionOptions{HeadDim: rtDim, Seed: 11}); err != nil {
			t.Fatalf("post-drain session create %d: %v", i, err)
		}
	}
}
