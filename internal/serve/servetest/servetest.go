// Package servetest provides an in-process fake fleet for exercising the
// cross-host dispatch path: each Worker wraps a real serve.Server behind
// an httptest listener and a programmable fault layer (dead host, drop
// rate, added latency, 5xx bursts, hang-until-cancel), and Cluster wires
// N workers behind a frontend. Tests kill, throttle, and revive workers
// without processes or real sockets, so the whole suite runs under -race.
package servetest

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"elsa/internal/serve"
)

// Worker is one fake fleet member: a fully functional serve.Server whose
// HTTP surface can be degraded on demand. The zero fault state serves
// normally. All fault setters are safe for concurrent use with traffic.
type Worker struct {
	srv *serve.Server
	ts  *httptest.Server

	served atomic.Int64 // requests that reached the real server

	mu       sync.Mutex
	down     bool
	dropRate float64
	latency  time.Duration
	errBurst int // answer 500 for this many more requests
	hang     bool
	rng      *rand.Rand
}

// NewWorker starts a worker running cfg behind the fault layer.
func NewWorker(cfg serve.Config) *Worker {
	w := &Worker{
		srv: serve.New(cfg),
		rng: rand.New(rand.NewSource(1)),
	}
	w.ts = httptest.NewServer(http.HandlerFunc(w.handle))
	return w
}

// URL returns the worker's base URL, the address a frontend dispatches to.
func (w *Worker) URL() string { return w.ts.URL }

// Server exposes the underlying serve.Server (for its metrics).
func (w *Worker) Server() *serve.Server { return w.srv }

// Served reports how many requests reached the real server (faulted
// requests are not counted).
func (w *Worker) Served() int64 { return w.served.Load() }

// SetDown simulates a dead or revived process: while down, every
// connection is severed without a response, exactly what a frontend sees
// from a crashed host.
func (w *Worker) SetDown(down bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.down = down
}

// SetDropRate severs the given fraction of requests (0 disables),
// simulating a flapping network path.
func (w *Worker) SetDropRate(rate float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.dropRate = rate
}

// SetLatency adds fixed delay before each request is served.
func (w *Worker) SetLatency(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.latency = d
}

// InjectErrors makes the next n op requests answer 500 with a JSON error
// body — an application-level burst rather than a transport fault. Health
// probes are unaffected, so the burst deterministically exercises the
// frontend's dispatch-failure handling instead of being consumed by (and
// ejecting the worker through) the probe loop.
func (w *Worker) InjectErrors(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.errBurst = n
}

// SetHang makes requests block until the client gives up (context
// cancellation closes the connection), simulating a wedged process that
// still accepts connections.
func (w *Worker) SetHang(hang bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.hang = hang
}

// Close shuts the listener and drains the wrapped server.
func (w *Worker) Close() {
	w.ts.Close()
	w.srv.Close()
}

func (w *Worker) handle(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	down, hang := w.down, w.hang
	latency := w.latency
	dropped := w.dropRate > 0 && w.rng.Float64() < w.dropRate
	burst := w.errBurst > 0 && r.URL.Path != "/v1/healthz"
	if burst {
		w.errBurst--
	}
	w.mu.Unlock()

	switch {
	case down, dropped:
		// Sever the connection with no response: the client's transport
		// surfaces an EOF/reset, as from a killed process.
		panic(http.ErrAbortHandler)
	case hang:
		// Drain the body first: the http server only watches the connection
		// for client disconnects (cancelling r.Context()) once the request
		// body has been consumed, so blocking with an unread POST body would
		// never observe the caller giving up and would wedge Close forever.
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		<-r.Context().Done()
		panic(http.ErrAbortHandler)
	case burst:
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(rw).Encode(map[string]string{"error": "servetest: injected failure"}) //nolint:errcheck
		return
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		}
	}
	w.served.Add(1)
	w.srv.ServeHTTP(rw, r)
}

// Cluster is a frontend dispatching to N fake workers, all in-process.
type Cluster struct {
	Workers  []*Worker
	Frontend *serve.Server

	ts *httptest.Server
}

// NewCluster starts n workers running workerCfg and a frontend running
// front with its WorkerAddrs pointed at them. Set front.Replicas to also
// serve locally; the zero value makes the frontend dispatch-only.
func NewCluster(n int, front, workerCfg serve.Config) *Cluster {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		w := NewWorker(workerCfg)
		c.Workers = append(c.Workers, w)
		front.WorkerAddrs = append(front.WorkerAddrs, w.URL())
	}
	c.Frontend = serve.New(front)
	c.ts = httptest.NewServer(c.Frontend)
	return c
}

// URL returns the frontend's base URL.
func (c *Cluster) URL() string { return c.ts.URL }

// Close tears the whole cluster down, frontend first.
func (c *Cluster) Close() {
	c.ts.Close()
	c.Frontend.Close()
	for _, w := range c.Workers {
		w.Close()
	}
}
