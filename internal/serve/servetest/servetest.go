// Package servetest provides an in-process fake fleet for exercising the
// cross-host dispatch path: each Worker wraps a real serve.Server behind
// an httptest listener and a programmable fault layer (dead host, drop
// rate, added latency, 5xx bursts, hang-until-cancel), and Cluster wires
// N workers behind a frontend. Tests kill, throttle, and revive workers
// without processes or real sockets, so the whole suite runs under -race.
package servetest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"elsa/internal/serve"
	"elsa/serve/client"
)

// Worker is one fake fleet member: a fully functional serve.Server whose
// HTTP surface can be degraded on demand. The zero fault state serves
// normally. All fault setters are safe for concurrent use with traffic.
type Worker struct {
	srv *serve.Server
	ts  *httptest.Server

	served atomic.Int64 // requests that reached the real server

	mu       sync.Mutex
	down     bool
	dropRate float64
	latency  time.Duration
	errBurst int // answer 500 for this many more requests
	hang     bool
	rng      *rand.Rand

	beater *serve.Heartbeater
}

// NewWorker starts a worker running cfg behind the fault layer.
func NewWorker(cfg serve.Config) *Worker {
	w := &Worker{
		srv: serve.New(cfg),
		rng: rand.New(rand.NewSource(1)),
	}
	w.ts = httptest.NewServer(http.HandlerFunc(w.handle))
	return w
}

// URL returns the worker's base URL, the address a frontend dispatches to.
func (w *Worker) URL() string { return w.ts.URL }

// Server exposes the underlying serve.Server (for its metrics).
func (w *Worker) Server() *serve.Server { return w.srv }

// Served reports how many requests reached the real server (faulted
// requests are not counted).
func (w *Worker) Served() int64 { return w.served.Load() }

// SetDown simulates a dead or revived process: while down, every
// connection is severed without a response, exactly what a frontend sees
// from a crashed host.
func (w *Worker) SetDown(down bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.down = down
}

// SetDropRate severs the given fraction of requests (0 disables),
// simulating a flapping network path.
func (w *Worker) SetDropRate(rate float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.dropRate = rate
}

// SetLatency adds fixed delay before each request is served.
func (w *Worker) SetLatency(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.latency = d
}

// InjectErrors makes the next n op requests answer 500 with a JSON error
// body — an application-level burst rather than a transport fault. Health
// probes are unaffected, so the burst deterministically exercises the
// frontend's dispatch-failure handling instead of being consumed by (and
// ejecting the worker through) the probe loop.
func (w *Worker) InjectErrors(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.errBurst = n
}

// SetHang makes requests block until the client gives up (context
// cancellation closes the connection), simulating a wedged process that
// still accepts connections.
func (w *Worker) SetHang(hang bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.hang = hang
}

// Join self-registers this worker with the frontend at frontendURL and
// starts heartbeating at interval — the elastic path a real worker takes
// with `elsaserve -join`. The worker advertises its own listener URL.
func (w *Worker) Join(frontendURL string, interval time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.beater != nil {
		return
	}
	w.beater = serve.NewHeartbeater(frontendURL, w.ts.URL, interval, 1, w.srv)
	w.beater.Start()
}

// Leave stops heartbeating (without draining): the frontend's sweep
// expires the member after ~3 missed intervals, as from a crashed host.
func (w *Worker) Leave() {
	w.mu.Lock()
	b := w.beater
	w.beater = nil
	w.mu.Unlock()
	if b != nil {
		b.Stop()
	}
}

// Drain puts the wrapped server into drain mode via its own /v1/drain
// endpoint, the same call a frontend forwards during a member drain.
func (w *Worker) Drain(ctx context.Context) error {
	cli := client.New(w.ts.URL)
	_, err := cli.Drain(ctx)
	return err
}

// Close shuts the listener and drains the wrapped server.
func (w *Worker) Close() {
	w.Leave()
	w.ts.Close()
	w.srv.Close()
}

func (w *Worker) handle(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	down, hang := w.down, w.hang
	latency := w.latency
	dropped := w.dropRate > 0 && w.rng.Float64() < w.dropRate
	burst := w.errBurst > 0 && r.URL.Path != "/v1/healthz"
	if burst {
		w.errBurst--
	}
	w.mu.Unlock()

	switch {
	case down, dropped:
		// Sever the connection with no response: the client's transport
		// surfaces an EOF/reset, as from a killed process.
		panic(http.ErrAbortHandler)
	case hang:
		// Drain the body first: the http server only watches the connection
		// for client disconnects (cancelling r.Context()) once the request
		// body has been consumed, so blocking with an unread POST body would
		// never observe the caller giving up and would wedge Close forever.
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		<-r.Context().Done()
		panic(http.ErrAbortHandler)
	case burst:
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(rw).Encode(map[string]string{"error": "servetest: injected failure"}) //nolint:errcheck
		return
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		}
	}
	w.served.Add(1)
	w.srv.ServeHTTP(rw, r)
}

// Cluster is a frontend dispatching to N fake workers, all in-process.
type Cluster struct {
	Workers  []*Worker
	Frontend *serve.Server

	ts *httptest.Server
}

// NewCluster starts n workers running workerCfg and a frontend running
// front with its WorkerAddrs pointed at them. Set front.Replicas to also
// serve locally; the zero value makes the frontend dispatch-only.
func NewCluster(n int, front, workerCfg serve.Config) *Cluster {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		w := NewWorker(workerCfg)
		c.Workers = append(c.Workers, w)
		front.WorkerAddrs = append(front.WorkerAddrs, w.URL())
	}
	c.Frontend = serve.New(front)
	c.ts = httptest.NewServer(c.Frontend)
	return c
}

// NewDynamicCluster starts a frontend with NO static workers: members
// arrive only by self-registration (AddWorker), the elastic control
// plane under test.
func NewDynamicCluster(front serve.Config) *Cluster {
	c := &Cluster{Frontend: serve.New(front)}
	c.ts = httptest.NewServer(c.Frontend)
	return c
}

// AddWorker starts a new worker running cfg and joins it to the
// frontend with the given heartbeat interval, returning once the
// frontend has activated it (so it owns ring keyspace). The worker is
// appended to c.Workers and torn down by Close.
func (c *Cluster) AddWorker(cfg serve.Config, interval time.Duration, timeout time.Duration) (*Worker, error) {
	w := NewWorker(cfg)
	c.Workers = append(c.Workers, w)
	w.Join(c.URL(), interval)
	if err := c.WaitState(w.URL(), "active", timeout); err != nil {
		return w, err
	}
	return w, nil
}

// DrainMember asks the frontend to drain the member at addr (the
// operator's rolling-upgrade call).
func (c *Cluster) DrainMember(ctx context.Context, addr string) (*client.MemberDrainStatus, error) {
	return client.New(c.URL()).DrainMember(ctx, addr)
}

// WaitState polls the frontend's membership table until the member at
// addr reaches the given state, or fails after timeout.
func (c *Cluster) WaitState(addr, state string, timeout time.Duration) error {
	cli := client.New(c.URL())
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		view, err := cli.Cluster(context.Background())
		if err == nil {
			for _, m := range view.Members {
				if m.Addr == addr {
					last = m.State
					if m.State == state {
						return nil
					}
				}
			}
			if last == "" && state == "gone" {
				// Gone members may be swept out of the table entirely.
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("servetest: member %s never reached state %q (last %q)", addr, state, last)
}

// URL returns the frontend's base URL.
func (c *Cluster) URL() string { return c.ts.URL }

// Close tears the whole cluster down, frontend first.
func (c *Cluster) Close() {
	c.ts.Close()
	c.Frontend.Close()
	for _, w := range c.Workers {
		w.Close()
	}
}
