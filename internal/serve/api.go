package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"elsa"
)

// Envelope is the versioned v1 request envelope shared by every POST
// endpoint: admission metadata (who is asking, at what priority, with how
// much latency budget) wraps the op payload in `op`. Bare pre-envelope
// payloads — bodies without an `op` key — are sunset: they answer 400
// with a migration hint unless the server runs with Config.CompatLegacy
// (elsaserve -compat-legacy), in which case they behave exactly as
// before: anonymous client, interactive priority, no deadline.
type Envelope struct {
	// ClientID keys the per-client quota bucket. Empty means anonymous;
	// all anonymous requests share one bucket, so naming yourself is how
	// a client gets its own quota. The X-Elsa-Client header is the
	// fallback carrier for clients that cannot change their body format.
	ClientID string `json:"client_id,omitempty"`
	// Priority is the op's class: interactive (default), batch, or
	// background. X-Elsa-Priority is the header fallback.
	Priority string `json:"priority,omitempty"`
	// DeadlineMS is the client's remaining latency budget. An op whose
	// budget cannot cover the estimated queue wait is shed immediately
	// with Retry-After instead of timing out in queue. 0 means no
	// deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Op is the endpoint's payload (AttendRequest, SessionCreateRequest,
	// ...).
	Op json.RawMessage `json:"op,omitempty"`
}

// requestMeta is the envelope's admission metadata, resolved.
type requestMeta struct {
	clientID string
	class    Class
	deadline time.Duration // remaining budget; 0 = none
}

// legacyEnvelopeHint is the 400 body a bare pre-envelope payload earns
// now that the legacy format is sunset. It names both the fix and the
// escape hatch so old clients can self-serve the migration.
const legacyEnvelopeHint = `bare legacy payload rejected: wrap the request body in the v1 envelope {"op": <payload>} (optionally with client_id / priority / deadline_ms); run elsaserve with -compat-legacy to restore the deprecated bare format during migration`

// decodeEnvelope decodes a size-bounded request body into payload and
// resolves the admission metadata (falling back to the X-Elsa-Client /
// X-Elsa-Priority headers). Only the v1 envelope is accepted unless
// legacyOK (Config.CompatLegacy) also admits bare pre-envelope payloads.
// It answers 400 itself on failure.
func decodeEnvelope(w http.ResponseWriter, r *http.Request, maxBytes int64, legacyOK bool, payload any) (requestMeta, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		fail(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return requestMeta{}, false
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		if !legacyOK {
			fail(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
			return requestMeta{}, false
		}
		env = Envelope{}
	}
	raw := env.Op
	if raw == nil {
		if !legacyOK {
			fail(w, http.StatusBadRequest, legacyEnvelopeHint)
			return requestMeta{}, false
		}
		raw = body
	}
	if err := json.Unmarshal(raw, payload); err != nil {
		fail(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return requestMeta{}, false
	}
	meta := requestMeta{clientID: env.ClientID}
	if meta.clientID == "" {
		meta.clientID = r.Header.Get("X-Elsa-Client")
	}
	priority := env.Priority
	if priority == "" {
		priority = r.Header.Get("X-Elsa-Priority")
	}
	meta.class, err = parseClass(priority)
	if err != nil {
		fail(w, http.StatusBadRequest, err.Error())
		return requestMeta{}, false
	}
	if env.DeadlineMS > 0 {
		meta.deadline = time.Duration(env.DeadlineMS) * time.Millisecond
	}
	return meta, true
}

// AttendRequest is the POST /v1/attend body: one self-attention op plus
// the engine configuration it should run under. Omitted engine fields take
// the library defaults; an omitted head_dim is inferred from the query
// width so small hand-written payloads work out of the box.
type AttendRequest struct {
	Q [][]float32 `json:"q"`
	K [][]float32 `json:"k"`
	V [][]float32 `json:"v"`

	// P is the degree of approximation (0 = exact attention). When T is
	// absent the server calibrates a threshold for this p once per engine
	// and reuses it.
	P float64 `json:"p,omitempty"`
	// T, when present, is an explicit pre-calibrated threshold (e.g. from
	// elsacalib / SaveThreshold) and skips server-side calibration.
	T *float64 `json:"t,omitempty"`
	// Backend selects the exact implementation for an exact op ("scores"
	// or "linear-scan"); empty defers to the server's -exact-backend
	// default. Rejected with 400 when combined with p > 0.
	Backend string `json:"backend,omitempty"`

	HeadDim   int   `json:"head_dim,omitempty"`
	HashBits  int   `json:"hash_bits,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	Quantized bool  `json:"quantized,omitempty"`
}

// AttendResponse is the POST /v1/attend reply.
type AttendResponse struct {
	// Context is the attention output, one row per query.
	Context [][]float32 `json:"context"`
	// CandidateFraction is the mean fraction of keys admitted by the
	// filter per query.
	CandidateFraction float64 `json:"candidate_fraction"`
	// FallbackQueries counts queries whose filter selected nothing.
	FallbackQueries int `json:"fallback_queries"`
	// Threshold echoes the operating point the op actually ran with.
	Threshold ThresholdJSON `json:"threshold"`
	// BatchSize is how many concurrent ops shared this op's dispatched
	// micro-batch.
	BatchSize int `json:"batch_size"`
}

// ThresholdJSON mirrors elsa.Threshold on the wire.
type ThresholdJSON struct {
	P       float64 `json:"p"`
	T       float64 `json:"t"`
	Queries int     `json:"queries,omitempty"`
}

// SessionCreateRequest is the POST /v1/sessions body: the engine
// configuration and operating point an autoregressive decode session runs
// under. head_dim is required here (there is no payload to infer it from).
type SessionCreateRequest struct {
	HeadDim   int   `json:"head_dim"`
	HashBits  int   `json:"hash_bits,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	Quantized bool  `json:"quantized,omitempty"`

	// P is the degree of approximation (0 = exact attention). With no
	// explicit T, the threshold resolves from the server's registry (memory
	// or state dir) or — failing that — is calibrated lazily on the
	// session's first query, over the prefix appended so far.
	P float64 `json:"p,omitempty"`
	// T, when present, is an explicit pre-calibrated threshold.
	T *float64 `json:"t,omitempty"`
	// Backend pins the session's exact backend ("scores" or
	// "linear-scan"); empty defers to the server default for exact
	// sessions. Rejected with 400 when combined with p > 0.
	Backend string `json:"backend,omitempty"`

	// Capacity preallocates stream storage for this many tokens (optional).
	Capacity int `json:"capacity,omitempty"`
}

// SessionCreateResponse is the POST /v1/sessions reply.
type SessionCreateResponse struct {
	ID string `json:"id"`
	// Threshold is the resolved operating point, when it is already known
	// at create time (explicit t, p=0, or a registry/state-dir hit). Absent
	// when the first query will calibrate it lazily.
	Threshold *ThresholdJSON `json:"threshold,omitempty"`
}

// SessionAppendRequest is the POST /v1/sessions/{id}/append body: one
// token via key/value, or several at once via keys/values.
type SessionAppendRequest struct {
	Key    []float32   `json:"key,omitempty"`
	Value  []float32   `json:"value,omitempty"`
	Keys   [][]float32 `json:"keys,omitempty"`
	Values [][]float32 `json:"values,omitempty"`
}

// SessionAppendResponse reports the session length after the append.
type SessionAppendResponse struct {
	Len int `json:"len"`
}

// SessionQueryRequest is the POST /v1/sessions/{id}/query body.
type SessionQueryRequest struct {
	Q []float32 `json:"q"`
	// T, when present, overrides the session's threshold for this query
	// only — the wire form of elsa.Overrides on a decode step.
	T *float64 `json:"t,omitempty"`
	// Backend overrides the session's exact backend for this query only.
	Backend string `json:"backend,omitempty"`
}

// SessionQueryResponse is one decode step's result.
type SessionQueryResponse struct {
	// Context is the attention output for this query (omitted inside a
	// packed step wave, which carries it as ContextPacked instead).
	Context []float32 `json:"context,omitempty"`
	// Candidates is the number of prefix keys computed exactly.
	Candidates int `json:"candidates"`
	// Fallback reports whether the filter selected nothing.
	Fallback bool `json:"fallback"`
	// Len is the current prefix length.
	Len int `json:"len"`
	// Threshold is the operating point the query ran with.
	Threshold ThresholdJSON `json:"threshold"`
	// BatchSize is how many session queries the continuous decode loop
	// coalesced into the dispatch this one rode in (1 = it rode alone).
	BatchSize int `json:"batch_size"`
}

// SessionExportResponse is the POST /v1/sessions/{id}/export reply: the
// session's portable state plus everything another worker needs to adopt
// it — the engine configuration (engines are deterministic clones, so the
// importer rebuilds an identical one) and the operating point. The state
// blob is the stream's versioned binary Export, base64 on the wire.
type SessionExportResponse struct {
	ID string `json:"id"`
	// State is the stream's Export blob (encoding/json renders []byte as
	// standard base64 on the wire).
	State []byte `json:"state"`
	// Len is the exported prefix length, for sanity checks.
	Len int `json:"len"`
	// Capacity echoes the capacity the session was created with.
	Capacity int `json:"capacity,omitempty"`

	HeadDim   int   `json:"head_dim"`
	HashBits  int   `json:"hash_bits,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	Quantized bool  `json:"quantized,omitempty"`

	// P is the session's degree of approximation; Threshold is the
	// resolved operating point when the session has one (absent while the
	// first query has yet to calibrate it).
	P         float64        `json:"p,omitempty"`
	Threshold *ThresholdJSON `json:"threshold,omitempty"`
	// Backend is the session's pinned exact backend, when it has one, so
	// a migration preserves the selection.
	Backend string `json:"backend,omitempty"`
}

// SessionImportRequest is the POST /v1/sessions/import body: adopt a
// session exported from another worker under its original ID — the
// receiving half of live migration. The fields mirror
// SessionExportResponse, so a mover can forward an export reply directly.
type SessionImportRequest struct {
	ID       string `json:"id"`
	State    []byte `json:"state"`
	Capacity int    `json:"capacity,omitempty"`

	HeadDim   int   `json:"head_dim"`
	HashBits  int   `json:"hash_bits,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	Quantized bool  `json:"quantized,omitempty"`

	P         float64        `json:"p,omitempty"`
	Threshold *ThresholdJSON `json:"threshold,omitempty"`
	Backend   string         `json:"backend,omitempty"`
}

// SessionImportResponse is the POST /v1/sessions/import reply.
type SessionImportResponse struct {
	ID string `json:"id"`
	// Len is the imported prefix length; callers compare it against the
	// export's Len to confirm the state arrived whole.
	Len int `json:"len"`
}

// SessionStepRequest is the POST /v1/sessions/step body: one decode
// step for many sessions in a single request — the client-side
// complement of the continuous decode loop. A model runner stepping N
// sequences submits all N queries here; server-side they enter the
// session registry concurrently and the decode loop coalesces them
// (with any other in-flight decode traffic) into shared dispatches, so
// the per-request cost that dominates per-query decode is paid once per
// wave instead of once per token.
type SessionStepRequest struct {
	Queries []SessionStepQuery `json:"queries"`
	// Packed asks for context vectors as packed base64 float32 (the
	// ContextPacked field) instead of JSON number arrays. Bulk waves use
	// it for the same reason QPacked exists: per-element float formatting
	// is the response's dominant cost.
	Packed bool `json:"packed,omitempty"`
}

// SessionStepQuery is one session's entry in a step wave. Exactly one
// of Q and QPacked carries the query vector.
type SessionStepQuery struct {
	ID string    `json:"id"`
	Q  []float32 `json:"q,omitempty"`
	// QPacked is the query as base64 little-endian float32 — the wave's
	// bulk encoding. JSON float parsing dominates a wave's CPU; packed
	// vectors parse with one base64 decode and round-trip bit-exactly.
	QPacked string `json:"qp,omitempty"`
	// T, when present, overrides the session's threshold for this query
	// only, exactly as on POST /v1/sessions/{id}/query.
	T *float64 `json:"t,omitempty"`
	// Backend overrides the session's exact backend for this query only,
	// exactly as on POST /v1/sessions/{id}/query.
	Backend string `json:"backend,omitempty"`
}

// SessionStepResponse carries one result per request query, in order.
type SessionStepResponse struct {
	Results []SessionStepResult `json:"results"`
}

// SessionStepResult is one query's outcome inside a step wave. Failures
// are per-entry: a missing session or shed query sets Error while the
// rest of the wave still decodes, and the wave itself answers 200.
type SessionStepResult struct {
	SessionQueryResponse
	// ContextPacked replaces Context (base64 little-endian float32) when
	// the request set Packed.
	ContextPacked string `json:"context_packed,omitempty"`
	Error         string `json:"error,omitempty"`
}

// HealthResponse is the GET /v1/healthz reply. The fleet fields are
// omitted on servers without remote workers, keeping standalone replies
// byte-identical to earlier versions. A draining server reports Status
// "draining" — still HTTP 200, so frontends keep probing it healthy
// while pinned sessions finish.
type HealthResponse struct {
	Status   string `json:"status"`
	Engines  int    `json:"engines"`
	Sessions int    `json:"sessions"`
	// Role is "frontend" when this server dispatches to remote workers.
	Role string `json:"role,omitempty"`
	// Workers and HealthyWorkers count the remote fleet lanes and how
	// many of them are currently passing probes.
	Workers        int `json:"workers,omitempty"`
	HealthyWorkers int `json:"healthy_workers,omitempty"`
	// Members counts membership entries that have not gone (joining +
	// active + draining); Draining counts those mid-drain.
	Members  int `json:"members,omitempty"`
	Draining int `json:"draining,omitempty"`
	// ShardDepth is the current total of queued micro-batches across all
	// dispatch shards; DecodeCoalesced and DecodeMeanBatch summarize the
	// continuous decode loop (queries that shared a batch, and the mean
	// decode batch size). Fleet-view only, like Role.
	ShardDepth      int64   `json:"shard_depth,omitempty"`
	DecodeCoalesced int64   `json:"decode_coalesced,omitempty"`
	DecodeMeanBatch float64 `json:"decode_mean_batch,omitempty"`
}

// JoinRequest is the POST /v1/cluster/join body: a worker registering
// with (or heartbeating to) this frontend.
type JoinRequest struct {
	// Addr is the worker's advertised base URL or host:port — what the
	// frontend dials back.
	Addr string `json:"addr"`
	// Weight scales the member's share of session keyspace (default 1).
	Weight int `json:"weight,omitempty"`
	// MaxSessions reports the worker's session capacity (informational).
	MaxSessions int `json:"max_sessions,omitempty"`
	// HeartbeatMS is the interval the worker promises to heartbeat at;
	// missing ~3 intervals expires the member. 0 (a bare one-shot join)
	// never expires — the probe loop alone governs routing.
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
	// Draining announces the worker is draining (propagated from its own
	// /v1/drain state), which is authoritative over probe results.
	Draining bool `json:"draining,omitempty"`
}

// JoinResponse is the POST /v1/cluster/join reply.
type JoinResponse struct {
	// State is the member's resulting membership state.
	State string `json:"state"`
	// Members counts membership entries that have not gone.
	Members int `json:"members"`
	// Version is the membership table version after this join.
	Version uint64 `json:"version"`
}

// ClusterSchemaVersion is the current GET /v1/cluster schema version.
// Version 1 introduced the explicit `signals` and `targets` blocks; the
// legacy top-level `members` / `queue_depth_by_class` / `sheds_by_class`
// fields are still emitted for pre-v1 clients but are deprecated and
// leave with the -compat-legacy envelope flag.
const ClusterSchemaVersion = 1

// ClusterMemberJSON is one member in the legacy GET /v1/cluster
// `members` listing (deprecated in favor of ClusterTargetJSON).
type ClusterMemberJSON struct {
	Addr        string `json:"addr"`
	State       string `json:"state"`
	Static      bool   `json:"static,omitempty"`
	Weight      int    `json:"weight,omitempty"`
	MaxSessions int    `json:"max_sessions,omitempty"`
	// HeartbeatAgeMS is how long ago the member last joined or
	// heartbeated; -1 when it never has (static seeds before any probe).
	HeartbeatAgeMS int64 `json:"heartbeat_age_ms"`
	// PinnedSessions counts live sessions this frontend holds pinned to
	// the member — the number an operator watches drain to zero.
	PinnedSessions int `json:"pinned_sessions"`
}

// ClusterSignalsJSON is the GET /v1/cluster `signals` block: the
// frontend-wide load signals an autoscale controller acts on, in one
// documented place. All rates are windowed (events/s over the last ~1s
// interval), never lifetime averages, so hysteresis bands see current
// pressure.
type ClusterSignalsJSON struct {
	// QueueDepth is the total queued ops; QueueDepthByClass splits it per
	// priority class. Sustained interactive depth means scale out.
	QueueDepth        int64            `json:"queue_depth"`
	QueueDepthByClass map[string]int64 `json:"queue_depth_by_class"`
	// ShedRateByClass is the windowed shed rate per class in events/s —
	// nonzero means admission is already refusing work.
	ShedRateByClass map[string]float64 `json:"shed_rate_by_class"`
	// ShedsByClass is the cumulative lifetime shed counter per class,
	// kept for dashboards; controllers should use ShedRateByClass.
	ShedsByClass map[string]int64 `json:"sheds_by_class"`
	// MeanBatch and MeanDecodeBatch are the mean dispatched micro-batch
	// and decode-batch sizes — low occupancy with low depth means scale
	// in.
	MeanBatch       float64 `json:"mean_batch"`
	MeanDecodeBatch float64 `json:"mean_decode_batch"`
}

// ClusterTargetJSON is one member in the GET /v1/cluster `targets`
// block: the per-member placement state (capacity, pinned sessions,
// liveness) a controller weighs when picking drain and rebalance targets.
type ClusterTargetJSON struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Static marks members seeded from -workers flags; they cannot be
	// scaled away by a controller, only drained manually.
	Static      bool `json:"static,omitempty"`
	Weight      int  `json:"weight,omitempty"`
	MaxSessions int  `json:"max_sessions,omitempty"`
	// HeartbeatAgeMS is how long ago the member last joined or
	// heartbeated; -1 when it never has.
	HeartbeatAgeMS int64 `json:"heartbeat_age_ms"`
	// PinnedSessions counts live sessions this frontend holds pinned to
	// the member.
	PinnedSessions int `json:"pinned_sessions"`
}

// ClusterResponse is the GET /v1/cluster reply — the versioned cluster
// view driving elsactl and the serve/client typed accessors.
type ClusterResponse struct {
	// SchemaVersion identifies this schema (ClusterSchemaVersion).
	// Clients must treat an absent/zero value as the pre-v1 legacy shape.
	SchemaVersion int `json:"schema_version"`
	// Version is the membership table version (bumps on every change).
	Version uint64 `json:"version"`
	// Signals and Targets are the v1 blocks: fleet-wide load signals and
	// per-member placement state.
	Signals ClusterSignalsJSON  `json:"signals"`
	Targets []ClusterTargetJSON `json:"targets"`

	// Members, QueueDepthByClass, and ShedsByClass are the deprecated
	// pre-v1 fields, still emitted for old clients; they duplicate
	// Targets and Signals and will be removed with -compat-legacy.
	Members           []ClusterMemberJSON `json:"members"`
	QueueDepthByClass map[string]int64    `json:"queue_depth_by_class,omitempty"`
	ShedsByClass      map[string]int64    `json:"sheds_by_class,omitempty"`
}

// ClusterRebalanceRequest is the POST /v1/cluster/rebalance body: migrate
// up to Max pinned sessions toward the member at Addr (typically a fresh
// joiner) using the live export/import path. Max <= 0 means "as many as
// placement prefers".
type ClusterRebalanceRequest struct {
	Addr string `json:"addr"`
	Max  int    `json:"max,omitempty"`
}

// ClusterRebalanceResponse reports the rebalance outcome.
type ClusterRebalanceResponse struct {
	Addr string `json:"addr"`
	// Moved counts sessions live-migrated toward the member.
	Moved int `json:"moved"`
	// PinnedSessions is how many sessions are pinned to the member after
	// the move.
	PinnedSessions int `json:"pinned_sessions"`
}

// ClusterDrainRequest is the POST /v1/cluster/drain body: which member
// to drain.
type ClusterDrainRequest struct {
	Addr string `json:"addr"`
}

// ClusterDrainResponse reports the drain's initial progress.
type ClusterDrainResponse struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Forwarded reports whether the worker's own /v1/drain accepted the
	// signal (false when the worker is unreachable; the frontend-side
	// drain still holds).
	Forwarded bool `json:"forwarded"`
	// PinnedSessions is how many sessions remained pinned to the member
	// when the drain started.
	PinnedSessions int `json:"pinned_sessions"`
	// Relocated counts pinned sessions the frontend live-migrated to
	// other members before replying, instead of waiting them out.
	Relocated int `json:"relocated,omitempty"`
}

// DrainResponse is the POST /v1/drain reply: this server's own drain
// state and how many sessions it still holds.
type DrainResponse struct {
	Draining bool `json:"draining"`
	Sessions int  `json:"sessions"`
}

// errorResponse is the JSON body for every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// validate performs the shape checks the scheduler relies on, returning a
// client-addressable error.
func (r *AttendRequest) validate() error {
	for _, part := range []struct {
		name string
		rows [][]float32
	}{{"q", r.Q}, {"k", r.K}, {"v", r.V}} {
		if len(part.rows) == 0 {
			return fmt.Errorf("%s must have at least one row", part.name)
		}
		cols := len(part.rows[0])
		if cols == 0 {
			return fmt.Errorf("%s row 0 is empty", part.name)
		}
		for i, row := range part.rows {
			if len(row) != cols {
				return fmt.Errorf("%s is ragged: row %d has %d columns, row 0 has %d",
					part.name, i, len(row), cols)
			}
		}
	}
	if len(r.K) != len(r.V) {
		return fmt.Errorf("%d keys but %d values", len(r.K), len(r.V))
	}
	if r.P < 0 {
		return fmt.Errorf("p must be >= 0, got %g", r.P)
	}
	if r.Backend != elsa.BackendAuto && r.T != nil {
		return fmt.Errorf("backend and t are mutually exclusive")
	}
	return checkWireBackend(r.Backend, r.P)
}

// checkWireBackend validates a wire-level backend selector against the
// op's degree of approximation: unknown names and exact backends on
// approximate ops both answer 400.
func checkWireBackend(backend string, p float64) error {
	if !elsa.ValidBackend(backend) {
		return fmt.Errorf("unknown backend %q (want %q or %q)",
			backend, elsa.BackendScores, elsa.BackendLinearScan)
	}
	if backend != elsa.BackendAuto && p != 0 {
		return fmt.Errorf("backend %q requires an exact operating point (p = 0)", backend)
	}
	return nil
}

// options maps the request's engine fields onto elsa.Options.
func (r *AttendRequest) options() elsa.Options {
	return normalizeOptions(elsa.Options{
		HeadDim:   r.HeadDim,
		HashBits:  r.HashBits,
		Seed:      r.Seed,
		Quantized: r.Quantized,
	}, len(r.Q[0]))
}

// overrides maps the request's operating-point fields onto the library's
// per-op override struct: an explicit t pins the threshold, otherwise p
// is left for the server's registry to resolve.
func (r *AttendRequest) overrides() elsa.Overrides {
	ov := elsa.Overrides{P: r.P, Backend: r.Backend}
	if r.T != nil {
		ov.Thr = &elsa.Threshold{P: r.P, T: *r.T}
	}
	return ov
}

// overrides is AttendRequest.overrides for session creation.
func (r *SessionCreateRequest) overrides() elsa.Overrides {
	ov := elsa.Overrides{P: r.P, Backend: r.Backend}
	if r.T != nil {
		ov.Thr = &elsa.Threshold{P: r.P, T: *r.T}
	}
	return ov
}
