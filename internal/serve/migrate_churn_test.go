package serve_test

// Migration-churn suite for portable session state: export/import round
// trips over HTTP, idle-spill to the state dir with transparent
// rehydration, drain-time live migration, and worker-loss recovery from
// the frontend's shadow mirrors — all against real serve.Servers over
// servetest's in-process listeners, run under -race.

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"elsa"
	"elsa/internal/serve"
	"elsa/internal/serve/servetest"
	"elsa/serve/client"
)

// mcKey builds a deterministic unit-ish vector so every test in this
// file appends the same token sequence for a given (i, round).
func mcKey(i, round int) []float32 {
	v := make([]float32, rtDim)
	v[i%rtDim] = 1
	v[(i+round)%rtDim] = 0.5
	return v
}

// TestSessionExportImportRoundTrip moves one session between two
// standalone servers by hand: export on A, import on B, and require the
// decode answers to be bit-identical — the HTTP-level contract live
// migration is built on. A duplicate import must refuse with 409 rather
// than clobber live state.
func TestSessionExportImportRoundTrip(t *testing.T) {
	a := servetest.NewWorker(serve.Config{BatchWindow: time.Millisecond, Replicas: 1})
	defer a.Close()
	b := servetest.NewWorker(serve.Config{BatchWindow: time.Millisecond, Replicas: 1})
	defer b.Close()

	ca, cb := client.New(a.URL()), client.New(b.URL())
	s, err := ca.NewSession(context.Background(), client.SessionOptions{HeadDim: rtDim, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const tokens = 50
	for i := 0; i < tokens; i++ {
		k := mcKey(i, 0)
		if _, err := s.Append(context.Background(), k, k); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	q := mcKey(3, 7)
	want, err := s.Query(context.Background(), q, elsa.Overrides{})
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.Export(context.Background())
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if st.Len != tokens {
		t.Fatalf("exported len = %d, want %d", st.Len, tokens)
	}
	if st.HeadDim != rtDim || st.Seed != 9 {
		t.Fatalf("exported config = (d=%d seed=%d), want (d=%d seed=9)", st.HeadDim, st.Seed, rtDim)
	}

	s2, err := cb.ImportSession(context.Background(), st)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if s2.ID() != s.ID() {
		t.Fatalf("imported session ID = %q, want original %q", s2.ID(), s.ID())
	}
	got, err := s2.Query(context.Background(), q, elsa.Overrides{})
	if err != nil {
		t.Fatalf("query after import: %v", err)
	}
	if got.Len != tokens {
		t.Fatalf("imported session len = %d, want %d", got.Len, tokens)
	}
	for j := range want.Context {
		if got.Context[j] != want.Context[j] {
			t.Fatalf("context[%d] = %v after import, want %v (not bit-identical)", j, got.Context[j], want.Context[j])
		}
	}

	// The imported session keeps decoding: appends and queries still track
	// the original if the same tokens land on both.
	k := mcKey(5, 1)
	if _, err := s.Append(context.Background(), k, k); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Append(context.Background(), k, k); err != nil {
		t.Fatal(err)
	}
	want2, err := s.Query(context.Background(), q, elsa.Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s2.Query(context.Background(), q, elsa.Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range want2.Context {
		if got2.Context[j] != want2.Context[j] {
			t.Fatalf("post-import decode diverged at context[%d]", j)
		}
	}

	// Importing the same state twice is a conflict, not a silent overwrite.
	_, err = cb.ImportSession(context.Background(), st)
	var api *client.APIError
	if !errors.As(err, &api) || api.Status != http.StatusConflict {
		t.Fatalf("duplicate import: want 409, got %v", err)
	}
}

// TestSessionSpillRehydrateBitIdentical lets an idle session spill out
// to the state dir, then queries it again: the rehydrated stream must
// answer bit-identically to the pre-spill stream, and the spill/
// rehydrate counters must both move.
func TestSessionSpillRehydrateBitIdentical(t *testing.T) {
	w := servetest.NewWorker(serve.Config{
		BatchWindow:  time.Millisecond,
		Replicas:     1,
		StateDir:     t.TempDir(),
		SessionSpill: 40 * time.Millisecond,
	})
	defer w.Close()
	c := client.New(w.URL())

	s, err := c.NewSession(context.Background(), client.SessionOptions{HeadDim: rtDim, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		k := mcKey(i, 0)
		if _, err := s.Append(context.Background(), k, k); err != nil {
			t.Fatal(err)
		}
	}
	q := mcKey(2, 5)
	want, err := s.Query(context.Background(), q, elsa.Overrides{})
	if err != nil {
		t.Fatal(err)
	}

	m := w.Server().Metrics()
	deadline := time.Now().Add(5 * time.Second)
	for m.SessionsSpilled() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never spilled to the state dir")
		}
		time.Sleep(10 * time.Millisecond)
	}

	got, err := s.Query(context.Background(), q, elsa.Overrides{})
	if err != nil {
		t.Fatalf("query after spill: %v", err)
	}
	for j := range want.Context {
		if got.Context[j] != want.Context[j] {
			t.Fatalf("rehydrated context[%d] = %v, want %v (not bit-identical)", j, got.Context[j], want.Context[j])
		}
	}
	if m.SessionsRehydrated() == 0 {
		t.Error("rehydrate counter never moved")
	}
}

// TestMemberDrainRelocatesPinnedSessions drains a member that holds live
// sessions: the drain reply must report them relocated, the member must
// hold zero pinned sessions immediately (no waiting them out), and every
// relocated session must keep answering bit-identically to an
// undisturbed reference — with no 5xx anywhere.
func TestMemberDrainRelocatesPinnedSessions(t *testing.T) {
	cl := servetest.NewDynamicCluster(dynamicFront())
	defer cl.Close()
	for i := 0; i < 2; i++ {
		if _, err := cl.AddWorker(dynamicWorker(), 25*time.Millisecond, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	ref := servetest.NewWorker(serve.Config{BatchWindow: time.Millisecond, Replicas: 1})
	defer ref.Close()
	refCli := client.New(ref.URL())
	c := client.New(cl.URL())

	type pair struct{ sess, mirror *client.Session }
	var pairs []pair
	pinnedOn := func() map[string]int {
		t.Helper()
		view, err := c.Cluster(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int{}
		for _, m := range view.Members {
			out[m.Addr] = m.PinnedSessions
		}
		return out
	}
	for i := 0; i < 40; i++ {
		s, err := c.NewSession(context.Background(), client.SessionOptions{HeadDim: rtDim, Seed: 11})
		if err != nil {
			t.Fatalf("session create: %v", err)
		}
		m, err := refCli.NewSession(context.Background(), client.SessionOptions{HeadDim: rtDim, Seed: 11})
		if err != nil {
			t.Fatalf("reference create: %v", err)
		}
		pairs = append(pairs, pair{s, m})
		p := pinnedOn()
		if len(pairs) >= 4 && p[cl.Workers[0].URL()] > 0 && p[cl.Workers[1].URL()] > 0 {
			break
		}
	}
	stepAll := func(round int) {
		t.Helper()
		for i, p := range pairs {
			k := mcKey(i, round)
			if _, err := p.sess.Append(context.Background(), k, k); err != nil {
				t.Fatalf("append session %d round %d: %v", i, round, err)
			}
			if _, err := p.mirror.Append(context.Background(), k, k); err != nil {
				t.Fatalf("append mirror %d round %d: %v", i, round, err)
			}
			got, err := p.sess.Query(context.Background(), k, elsa.Overrides{})
			if err != nil {
				t.Fatalf("query session %d round %d: %v", i, round, err)
			}
			want, err := p.mirror.Query(context.Background(), k, elsa.Overrides{})
			if err != nil {
				t.Fatalf("query mirror %d round %d: %v", i, round, err)
			}
			for j := range want.Context {
				if got.Context[j] != want.Context[j] {
					t.Fatalf("session %d round %d: context[%d] = %v, want %v (not bit-identical)",
						i, round, j, got.Context[j], want.Context[j])
				}
			}
		}
	}
	stepAll(0)

	victim := cl.Workers[0].URL()
	before := pinnedOn()
	if before[victim] == 0 {
		t.Fatalf("no sessions pinned to %s: %v", victim, before)
	}
	status, err := cl.DrainMember(context.Background(), victim)
	if err != nil {
		t.Fatalf("drain member: %v", err)
	}
	if status.Relocated == 0 {
		t.Fatalf("drain relocated 0 of %d pinned sessions: %+v", before[victim], status)
	}
	if status.PinnedSessions != before[victim] {
		t.Errorf("drain reply pinned = %d, want %d (the count when the drain started)", status.PinnedSessions, before[victim])
	}
	if got := pinnedOn()[victim]; got != 0 {
		t.Fatalf("member still holds %d pinned sessions right after the drain reply", got)
	}
	if n := cl.Frontend.Metrics().SessionsMigrated(); n == 0 {
		t.Error("migration counter never moved")
	}

	// Every session — relocated ones included — keeps decoding
	// bit-identically.
	stepAll(1)
	stepAll(2)
}

// TestWorkerLossRecoversFromShadow kills a worker mid-decode: the next
// op on each session pinned to it must recover from the frontend's
// shadow mirror — transparently, with the answer bit-identical to an
// undisturbed reference — instead of failing with 503 until the fleet
// heals.
func TestWorkerLossRecoversFromShadow(t *testing.T) {
	cl := servetest.NewDynamicCluster(dynamicFront())
	defer cl.Close()
	for i := 0; i < 2; i++ {
		if _, err := cl.AddWorker(dynamicWorker(), 25*time.Millisecond, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	ref := servetest.NewWorker(serve.Config{BatchWindow: time.Millisecond, Replicas: 1})
	defer ref.Close()
	refCli := client.New(ref.URL())
	c := client.New(cl.URL())

	type pair struct{ sess, mirror *client.Session }
	var pairs []pair
	pinnedOn := func() map[string]int {
		t.Helper()
		view, err := c.Cluster(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int{}
		for _, m := range view.Members {
			out[m.Addr] = m.PinnedSessions
		}
		return out
	}
	for i := 0; i < 40; i++ {
		s, err := c.NewSession(context.Background(), client.SessionOptions{HeadDim: rtDim, Seed: 13})
		if err != nil {
			t.Fatalf("session create: %v", err)
		}
		m, err := refCli.NewSession(context.Background(), client.SessionOptions{HeadDim: rtDim, Seed: 13})
		if err != nil {
			t.Fatalf("reference create: %v", err)
		}
		pairs = append(pairs, pair{s, m})
		if len(pairs) >= 4 && pinnedOn()[cl.Workers[0].URL()] > 0 {
			break
		}
	}
	stepAll := func(round int) {
		t.Helper()
		for i, p := range pairs {
			k := mcKey(i, round)
			if _, err := p.sess.Append(context.Background(), k, k); err != nil {
				t.Fatalf("append session %d round %d: %v", i, round, err)
			}
			if _, err := p.mirror.Append(context.Background(), k, k); err != nil {
				t.Fatalf("append mirror %d round %d: %v", i, round, err)
			}
			got, err := p.sess.Query(context.Background(), k, elsa.Overrides{})
			if err != nil {
				t.Fatalf("query session %d round %d: %v", i, round, err)
			}
			want, err := p.mirror.Query(context.Background(), k, elsa.Overrides{})
			if err != nil {
				t.Fatalf("query mirror %d round %d: %v", i, round, err)
			}
			for j := range want.Context {
				if got.Context[j] != want.Context[j] {
					t.Fatalf("session %d round %d: context[%d] = %v, want %v (not bit-identical)",
						i, round, j, got.Context[j], want.Context[j])
				}
			}
		}
	}
	if pinnedOn()[cl.Workers[0].URL()] == 0 {
		t.Fatalf("no sessions pinned to worker 0 after %d creates", len(pairs))
	}
	stepAll(0)

	// Kill worker 0 mid-decode: connections sever with no response, as
	// from a killed process. Every subsequent op must still succeed — the
	// registry recovers each affected session from its shadow on the op
	// that first observes the loss — and stay bit-identical.
	cl.Workers[0].SetDown(true)
	stepAll(1)
	stepAll(2)
	if n := cl.Frontend.Metrics().SessionsRecovered(); n == 0 {
		t.Error("recovery counter never moved despite the worker loss")
	}
}

// TestZeroPinnedDrainRepliesImmediately drains a member holding no
// pinned sessions while the member itself is wedged (its /v1/drain
// hangs in 2s of injected latency): the frontend must reply immediately
// anyway, forwarding the drain signal in the background.
func TestZeroPinnedDrainRepliesImmediately(t *testing.T) {
	cl := servetest.NewDynamicCluster(dynamicFront())
	defer cl.Close()
	for i := 0; i < 2; i++ {
		if _, err := cl.AddWorker(dynamicWorker(), 25*time.Millisecond, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	victim := cl.Workers[0]
	victim.SetLatency(2 * time.Second)
	start := time.Now()
	status, err := cl.DrainMember(context.Background(), victim.URL())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("drain member: %v", err)
	}
	if status.State != "draining" {
		t.Fatalf("drain reply state = %q, want draining", status.State)
	}
	if status.PinnedSessions != 0 || status.Relocated != 0 {
		t.Fatalf("zero-pinned drain reported pinned=%d relocated=%d", status.PinnedSessions, status.Relocated)
	}
	if elapsed > time.Second {
		t.Fatalf("zero-pinned drain took %v; must not wait on the member", elapsed)
	}
	victim.SetLatency(0)
}
