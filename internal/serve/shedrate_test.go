package serve

import (
	"testing"
	"time"
)

// TestShedRatesWindowed pins the windowed shed-rate signal GET
// /v1/cluster surfaces: rates cover the last completed window only (not
// lifetime averages), the first read seeds and reports zeros, reads
// inside a window return the previous window's rates, and an idle
// window decays the rate back to zero.
func TestShedRatesWindowed(t *testing.T) {
	m := NewMetrics()
	now := time.Unix(100, 0)
	m.clock = func() time.Time { return now }

	// First read seeds the window: all zeros regardless of prior sheds.
	m.ObserveClassShed(ClassInteractive)
	for class, r := range m.ShedRates() {
		if r != 0 {
			t.Fatalf("seed read: rate[%s] = %v, want 0", class, r)
		}
	}

	// Four sheds over a 2s window → 2 events/s for that class alone.
	for i := 0; i < 4; i++ {
		m.ObserveClassShed(ClassInteractive)
	}
	m.ObserveClassShed(ClassBatch)
	now = now.Add(2 * time.Second)
	rates := m.ShedRates()
	if got := rates[ClassInteractive.String()]; got != 2 {
		t.Fatalf("interactive rate = %v, want 2/s", got)
	}
	if got := rates[ClassBatch.String()]; got != 0.5 {
		t.Fatalf("batch rate = %v, want 0.5/s", got)
	}

	// A read before the window elapses returns the same completed window,
	// even as new sheds accumulate.
	m.ObserveClassShed(ClassInteractive)
	now = now.Add(m.shedWindow / 2)
	if got := m.ShedRates()[ClassInteractive.String()]; got != 2 {
		t.Fatalf("mid-window rate = %v, want previous window's 2/s", got)
	}

	// Once a full idle window passes, the rate decays to current pressure.
	now = now.Add(5 * time.Second)
	if got := m.ShedRates()[ClassInteractive.String()]; got >= 0.2 {
		t.Fatalf("post-idle rate = %v, want near zero", got)
	}
	now = now.Add(2 * time.Second)
	if got := m.ShedRates()[ClassInteractive.String()]; got != 0 {
		t.Fatalf("fully idle rate = %v, want 0", got)
	}
}
