package serve_test

// Golden test for the standalone /v1/healthz body: external monitors
// parse this reply, so growing the cluster fields must not perturb a
// single byte of it. The fleet fields (role, workers, members, ...)
// appear only on servers that actually have a fleet.

import (
	"io"
	"net/http"
	"testing"
	"time"

	"elsa/internal/serve"
	"elsa/internal/serve/servetest"
)

const standaloneHealthzGolden = "{\"status\":\"ok\",\"engines\":0,\"sessions\":0}\n"

func TestStandaloneHealthzBodyGolden(t *testing.T) {
	w := servetest.NewWorker(serve.Config{BatchWindow: time.Millisecond, Replicas: 1})
	defer w.Close()

	resp, err := http.Get(w.URL() + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
	if string(body) != standaloneHealthzGolden {
		t.Fatalf("standalone healthz body changed:\n got  %q\n want %q", body, standaloneHealthzGolden)
	}
}
