package serve

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"time"

	"elsa"
	"elsa/serve/client"
)

// worker is one remote elsaserve process in the fleet. The frontend
// dispatcher routes micro-batch ops to it over HTTP through serve/client,
// probes its /v1/healthz on a fixed interval, and ejects it after
// failLimit consecutive failures (probe or dispatch). A later successful
// probe re-admits it. The in-flight semaphore caps concurrent ops on the
// wire to one worker, the cross-host analogue of a shard's bounded queue.
type worker struct {
	addr      string
	cli       *client.Client
	inflight  chan struct{}
	failLimit int
	metrics   *Metrics

	mu      sync.Mutex
	healthy bool
	fails   int // consecutive probe/dispatch failures
}

func newWorker(addr string, inflight, failLimit int, m *Metrics) *worker {
	w := &worker{
		addr:      addr,
		cli:       client.New(addr),
		inflight:  make(chan struct{}, inflight),
		failLimit: failLimit,
		metrics:   m,
		healthy:   true, // assume up until proven otherwise
	}
	m.SetWorkerHealthy(addr, true)
	return w
}

// isHealthy reports whether the worker is admitted for dispatch.
func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// fault records one failed probe or dispatch; failLimit consecutive
// faults eject the worker from routing until a probe succeeds again.
func (w *worker) fault() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails++
	if w.healthy && w.fails >= w.failLimit {
		w.healthy = false
		w.metrics.ObserveWorkerEjection(w.addr)
		w.metrics.SetWorkerHealthy(w.addr, false)
	}
}

// recover records one successful probe or dispatch, resetting the
// consecutive-failure count and re-admitting an ejected worker.
func (w *worker) recover() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails = 0
	if !w.healthy {
		w.healthy = true
		w.metrics.ObserveWorkerReadmission(w.addr)
		w.metrics.SetWorkerHealthy(w.addr, true)
	}
}

// workerSet is the frontend's remote fleet: the workers plus the probe
// loops that keep their health state current.
type workerSet struct {
	workers []*worker
	probe   time.Duration

	stop chan struct{}
	wg   sync.WaitGroup
}

// newWorkerSet builds the fleet from base addresses ("host:port" or full
// URLs). Empty addrs yield an empty set — a purely local server.
func newWorkerSet(addrs []string, probe time.Duration, inflight, failLimit int, m *Metrics) *workerSet {
	f := &workerSet{probe: probe, stop: make(chan struct{})}
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		f.workers = append(f.workers, newWorker(normalizeWorkerAddr(a), inflight, failLimit, m))
	}
	return f
}

// normalizeWorkerAddr accepts "host:port" shorthand for http URLs.
func normalizeWorkerAddr(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return addr
	}
	return "http://" + addr
}

// start launches one health-probe loop per worker.
func (f *workerSet) start() {
	for _, w := range f.workers {
		f.wg.Add(1)
		go f.probeLoop(w)
	}
}

// probeLoop GETs the worker's /v1/healthz every probe interval. Failures
// feed the same consecutive-failure counter as dispatch errors; a success
// resets it and re-admits an ejected worker.
func (f *workerSet) probeLoop(w *worker) {
	defer f.wg.Done()
	// The probe deadline is decoupled from the interval: a short interval
	// buys fast detection, but a probe that merely runs long on a loaded
	// worker must not count as a failure, or load alone ejects healthy
	// workers.
	timeout := f.probe
	if timeout < time.Second {
		timeout = time.Second
	}
	t := time.NewTicker(f.probe)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			_, err := w.cli.Health(ctx)
			cancel()
			if err != nil {
				w.fault()
			} else {
				w.recover()
			}
		}
	}
}

// close stops the probe loops. Safe to call on an empty set.
func (f *workerSet) close() {
	close(f.stop)
	f.wg.Wait()
}

// healthyCount reports how many workers are currently admitted.
func (f *workerSet) healthyCount() int {
	n := 0
	for _, w := range f.workers {
		if w.isHealthy() {
			n++
		}
	}
	return n
}

// workerError marks an op that failed against a remote worker. retryable
// errors (transport faults, worker 5xx, worker overload) may be rerouted
// to another shard; the rest are the op's own fault and surface directly.
type workerError struct {
	addr      string
	err       error
	retryable bool
}

func (e *workerError) Error() string { return "worker " + e.addr + ": " + e.err.Error() }
func (e *workerError) Unwrap() error { return e.err }

// shardBackend is what a dispatch shard executes micro-batches through:
// an in-process engine replica or a remote worker. attendBatch returns
// one output or error per job, so a partially failed remote batch can
// reroute only the failed ops.
type shardBackend interface {
	attendBatch(jobs []*job) ([]*elsa.Output, []error)
	available() bool
	name() string
}

// localBackend runs batches on an in-process engine replica — the
// pre-fleet behaviour, now one implementation of shardBackend.
type localBackend struct {
	eng     *elsa.Engine
	workers int
}

func (b *localBackend) name() string    { return "local" }
func (b *localBackend) available() bool { return true }

func (b *localBackend) attendBatch(jobs []*job) ([]*elsa.Output, []error) {
	ops := make([]elsa.BatchOp, len(jobs))
	for i, j := range jobs {
		ops[i] = j.op
	}
	errs := make([]error, len(jobs))
	// Each batch op runs elsa.Attend's pooled-workspace fast path: no
	// per-query allocations and no candidate-list collection (the serving
	// API only reports counts), so concurrent batches reuse warm buffers
	// from the engine's sync.Pool instead of churning the allocator. The
	// shared threshold argument is irrelevant: every op carries its own.
	outs, err := b.eng.AttendBatchContext(context.Background(), ops, elsa.Exact(), b.workers)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return make([]*elsa.Output, len(jobs)), errs
	}
	return outs, errs
}

// remoteBackend runs batches on a remote worker by fanning the ops out as
// concurrent /v1/attend calls (bounded by the worker's in-flight cap);
// the worker's own dispatcher re-coalesces them into micro-batches. Every
// op carries its threshold pinned in the wire `t`, so the worker never
// recalibrates and results stay bit-identical to a local run of the same
// engine options.
type remoteBackend struct {
	w    *worker
	opts elsa.Options
}

func (b *remoteBackend) name() string    { return "remote:" + b.w.addr }
func (b *remoteBackend) available() bool { return b.w.isHealthy() }

func (b *remoteBackend) attendBatch(jobs []*job) ([]*elsa.Output, []error) {
	outs := make([]*elsa.Output, len(jobs))
	errs := make([]error, len(jobs))
	b.w.metrics.ObserveRemoteOps(b.w.addr, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j *job) {
			defer wg.Done()
			select {
			case b.w.inflight <- struct{}{}:
			case <-j.ctx.Done():
				errs[i] = j.ctx.Err()
				return
			}
			defer func() { <-b.w.inflight }()
			res, err := b.w.cli.Attend(j.ctx, j.op.Q, j.op.K, j.op.V, client.AttendOptions{
				Overrides: elsa.Overrides{Thr: j.op.Thr},
				HeadDim:   b.opts.HeadDim,
				HashBits:  b.opts.HashBits,
				Seed:      b.opts.Seed,
				Quantized: b.opts.Quantized,
			})
			if err != nil {
				errs[i] = b.classify(err)
				return
			}
			b.w.recover()
			outs[i] = &elsa.Output{
				Context:           res.Context,
				CandidateFraction: res.CandidateFraction,
				FallbackQueries:   res.FallbackQueries,
			}
		}(i, j)
	}
	wg.Wait()
	return outs, errs
}

// classify sorts one remote failure into the dispatcher's retry taxonomy
// and feeds the worker's health state: transport faults and worker 5xx
// count toward ejection and reroute; worker overload (429/503) reroutes
// without blaming health; everything else is terminal for the op.
func (b *remoteBackend) classify(err error) error {
	var api *client.APIError
	if errors.As(err, &api) {
		switch {
		case api.Status == http.StatusTooManyRequests || api.Status == http.StatusServiceUnavailable:
			return &workerError{addr: b.w.addr, err: err, retryable: true}
		case api.Status >= 500:
			b.w.fault()
			return &workerError{addr: b.w.addr, err: err, retryable: true}
		default:
			return &workerError{addr: b.w.addr, err: err, retryable: false}
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The requester is gone or out of budget; says nothing about the
		// worker and there is no time left to reroute.
		return err
	}
	// Transport-level failure: connection refused, reset, EOF — the
	// classic signature of a dead or dying host.
	b.w.fault()
	return &workerError{addr: b.w.addr, err: err, retryable: true}
}
