package serve

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"elsa"
	"elsa/serve/client"
)

// worker is one remote elsaserve process in the fleet. The frontend
// dispatcher routes micro-batch ops to it over HTTP through serve/client,
// probes its /v1/healthz on a jittered interval, and ejects it after
// failLimit consecutive failures (probe or dispatch). A later successful
// probe re-admits it. The in-flight semaphore caps concurrent ops on the
// wire to one worker, the cross-host analogue of a shard's bounded queue.
type worker struct {
	addr      string
	cli       *client.Client
	inflight  chan struct{}
	failLimit int
	metrics   *Metrics

	mu      sync.Mutex
	healthy bool
	fails   int // consecutive probe/dispatch failures
	// draining and gone mirror the membership table's view: a draining
	// worker finishes its pinned sessions but takes no new routing; a gone
	// worker (expired heartbeats) takes nothing until it rejoins.
	draining bool
	gone     bool
}

func newWorker(addr string, inflight, failLimit int, m *Metrics) *worker {
	w := &worker{
		addr:      addr,
		cli:       client.New(addr),
		inflight:  make(chan struct{}, inflight),
		failLimit: failLimit,
		metrics:   m,
		healthy:   true, // assume up until proven otherwise
	}
	m.SetWorkerHealthy(addr, true)
	return w
}

// isHealthy reports whether the worker's health probes are passing,
// irrespective of membership state.
func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// routable reports whether new work — one-shot micro-batches and session
// placements — may land on this worker: probes passing and the member
// neither draining nor gone. Traffic for already-pinned sessions bypasses
// this check, which is exactly what lets a draining worker finish them.
func (w *worker) routable() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy && !w.draining && !w.gone
}

// setDraining flips the worker's draining flag (membership transitions
// own this; the probe loop never touches it).
func (w *worker) setDraining(d bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.draining = d
}

// setGone marks the worker departed or — on a rejoin — back. Rejoining
// also clears draining and the failure streak: the restarted process is
// probed fresh, not blamed for its predecessor's faults.
func (w *worker) setGone(g bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.gone = g
	if !g {
		w.draining = false
		w.fails = 0
	}
}

// fault records one failed probe or dispatch; failLimit consecutive
// faults eject the worker from routing until a probe succeeds again.
func (w *worker) fault() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails++
	if w.healthy && w.fails >= w.failLimit {
		w.healthy = false
		w.metrics.ObserveWorkerEjection(w.addr)
		w.metrics.SetWorkerHealthy(w.addr, false)
	}
}

// recover records one successful probe or dispatch, resetting the
// consecutive-failure count and re-admitting an ejected worker.
func (w *worker) recover() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails = 0
	if !w.healthy {
		w.healthy = true
		w.metrics.ObserveWorkerReadmission(w.addr)
		w.metrics.SetWorkerHealthy(w.addr, true)
	}
}

// workerSet is the frontend's remote fleet: the workers plus the probe
// loops that keep their health state current. The set is dynamic — the
// static -workers list merely seeds it, and cluster joins grow it at
// runtime — so readers take snapshots instead of iterating a shared
// slice.
type workerSet struct {
	probe     time.Duration
	inflight  int
	failLimit int
	metrics   *Metrics
	// onProbe, when set (before start), observes every probe outcome —
	// the hook membership activation rides on. h is nil when err != nil.
	onProbe func(w *worker, h *client.Health, err error)

	mu      sync.Mutex
	byAddr  map[string]*worker
	workers []*worker // insertion order, for deterministic iteration
	started bool
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// newWorkerSet builds the fleet from base addresses ("host:port" or full
// URLs). Empty addrs yield an empty set — a purely local server until
// something joins.
func newWorkerSet(addrs []string, probe time.Duration, inflight, failLimit int, m *Metrics) *workerSet {
	f := &workerSet{
		probe:     probe,
		inflight:  inflight,
		failLimit: failLimit,
		metrics:   m,
		byAddr:    make(map[string]*worker),
		stop:      make(chan struct{}),
	}
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		addr := normalizeWorkerAddr(a)
		if _, ok := f.byAddr[addr]; ok {
			continue
		}
		w := newWorker(addr, inflight, failLimit, m)
		f.byAddr[addr] = w
		f.workers = append(f.workers, w)
	}
	return f
}

// normalizeWorkerAddr accepts "host:port" shorthand for http URLs.
func normalizeWorkerAddr(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return addr
	}
	return "http://" + addr
}

// start launches one health-probe loop per seeded worker.
func (f *workerSet) start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.started = true
	for _, w := range f.workers {
		f.wg.Add(1)
		go f.probeLoop(w)
	}
}

// add admits a worker at addr (already normalized) into the fleet at
// runtime, starting its probe loop. An existing worker is returned as-is
// with its gone flag cleared — a rejoin revives the same lane instead of
// leaking a new one. Returns created=true when a new worker (and dispatch
// shard) must be wired up. Nil after close.
func (f *workerSet) add(addr string) (w *worker, created bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, false
	}
	if w, ok := f.byAddr[addr]; ok {
		w.setGone(false)
		return w, false
	}
	w = newWorker(addr, f.inflight, f.failLimit, f.metrics)
	f.byAddr[addr] = w
	f.workers = append(f.workers, w)
	if f.started {
		f.wg.Add(1)
		go f.probeLoop(w)
	}
	return w, true
}

// get returns the worker at addr (already normalized), or nil.
func (f *workerSet) get(addr string) *worker {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.byAddr[addr]
}

// snapshot returns the current workers in insertion order.
func (f *workerSet) snapshot() []*worker {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*worker(nil), f.workers...)
}

// size reports how many workers the fleet has ever admitted (gone
// members included — their lanes persist for rejoin).
func (f *workerSet) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.workers)
}

// probeLoop GETs the worker's /v1/healthz, first immediately — a freshly
// joined worker should activate within one round-trip, not one interval —
// then on a ±20% jittered interval so a large fleet sharing one
// configured period doesn't thundering-herd the frontend. Failures feed
// the same consecutive-failure counter as dispatch errors; a success
// resets it and re-admits an ejected worker.
func (f *workerSet) probeLoop(w *worker) {
	defer f.wg.Done()
	for {
		f.probeOnce(w)
		t := time.NewTimer(jitter(f.probe))
		select {
		case <-f.stop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// probeOnce runs one health probe against w and feeds the outcome into
// its health state and the onProbe hook.
func (f *workerSet) probeOnce(w *worker) {
	// The probe deadline is decoupled from the interval: a short interval
	// buys fast detection, but a probe that merely runs long on a loaded
	// worker must not count as a failure, or load alone ejects healthy
	// workers.
	timeout := f.probe
	if timeout < time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	h, err := w.cli.Health(ctx)
	cancel()
	if err != nil {
		w.fault()
	} else {
		w.recover()
	}
	if f.onProbe != nil {
		f.onProbe(w, h, err)
	}
}

// jitter spreads d by ±20%. The global rand source is goroutine-safe and
// this is far off the hot path.
func jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}

// close stops the probe loops. Safe to call on an empty set.
func (f *workerSet) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	close(f.stop)
	f.wg.Wait()
}

// healthyCount reports how many workers' probes are passing.
func (f *workerSet) healthyCount() int {
	n := 0
	for _, w := range f.snapshot() {
		if w.isHealthy() {
			n++
		}
	}
	return n
}

// workerError marks an op that failed against a remote worker. retryable
// errors (transport faults, worker 5xx, worker overload) may be rerouted
// to another shard; the rest are the op's own fault and surface directly.
type workerError struct {
	addr      string
	err       error
	retryable bool
}

func (e *workerError) Error() string { return "worker " + e.addr + ": " + e.err.Error() }
func (e *workerError) Unwrap() error { return e.err }

// shardBackend is what a dispatch shard executes micro-batches through:
// an in-process engine replica or a remote worker. attendBatch returns
// one output or error per job, so a partially failed remote batch can
// reroute only the failed ops. decodeBatch executes a continuous-decode
// batch — every job carries a decodeJob — writing results into each job's
// decodeJob and returning one error per job.
type shardBackend interface {
	attendBatch(jobs []*job) ([]*elsa.Output, []error)
	decodeBatch(jobs []*job) []error
	available() bool
	name() string
}

// localBackend runs batches on an in-process engine replica — the
// pre-fleet behaviour, now one implementation of shardBackend.
type localBackend struct {
	eng     *elsa.Engine
	workers int

	// decOps and decErrs are the decode path's reusable staging buffers.
	// A shard loop runs its batches serially, so reuse is race-free, and
	// it keeps the steady-state decode cycle at zero allocations per
	// query.
	decOps  []elsa.StreamOp
	decErrs []error
}

func (b *localBackend) name() string    { return "local" }
func (b *localBackend) available() bool { return true }

func (b *localBackend) attendBatch(jobs []*job) ([]*elsa.Output, []error) {
	ops := make([]elsa.BatchOp, len(jobs))
	for i, j := range jobs {
		ops[i] = j.op
	}
	errs := make([]error, len(jobs))
	// Each batch op runs elsa.Attend's pooled-workspace fast path: no
	// per-query allocations and no candidate-list collection (the serving
	// API only reports counts), so concurrent batches reuse warm buffers
	// from the engine's sync.Pool instead of churning the allocator. The
	// shared threshold argument is irrelevant: every op carries its own.
	outs, err := b.eng.AttendBatchContext(context.Background(), ops, elsa.Exact(), b.workers)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return make([]*elsa.Output, len(jobs)), errs
	}
	return outs, errs
}

// decodeBatch runs a continuous-decode batch directly on each session's
// stream state via AttendStreams: per-op pinned thresholds, per-stream
// workspaces, results written straight into each session's recycled
// buffer. Stream-state execution is what keeps a mixed-session batch
// bit-identical to serializing the same queries — each op runs exactly
// the computation the session's own QueryOverrides would have.
func (b *localBackend) decodeBatch(jobs []*job) []error {
	if cap(b.decOps) < len(jobs) {
		b.decOps = make([]elsa.StreamOp, len(jobs))
		b.decErrs = make([]error, len(jobs))
	}
	ops := b.decOps[:len(jobs)]
	errs := b.decErrs[:len(jobs)]
	for i, j := range jobs {
		dec := j.dec
		ops[i] = elsa.StreamOp{
			Stream:    dec.stream,
			Q:         dec.q,
			Overrides: elsa.Overrides{Thr: &dec.thr, P: dec.p, Backend: dec.backend},
			Dst:       dec.out,
		}
	}
	elsa.AttendStreams(ops, elsa.Exact(), b.workers)
	for i, j := range jobs {
		dec := j.dec
		dec.out, dec.stats, errs[i] = ops[i].Out, ops[i].Stats, ops[i].Err
		ops[i] = elsa.StreamOp{} // drop stream/buffer references
	}
	return errs
}

// remoteBackend runs batches on a remote worker by fanning the ops out as
// concurrent /v1/attend calls (bounded by the worker's in-flight cap);
// the worker's own dispatcher re-coalesces them into micro-batches. Every
// op carries its threshold pinned in the wire `t`, so the worker never
// recalibrates and results stay bit-identical to a local run of the same
// engine options.
type remoteBackend struct {
	w    *worker
	opts elsa.Options
}

func (b *remoteBackend) name() string    { return "remote:" + b.w.addr }
func (b *remoteBackend) available() bool { return b.w.routable() }

func (b *remoteBackend) attendBatch(jobs []*job) ([]*elsa.Output, []error) {
	outs := make([]*elsa.Output, len(jobs))
	errs := make([]error, len(jobs))
	b.w.metrics.ObserveRemoteOps(b.w.addr, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j *job) {
			defer wg.Done()
			select {
			case b.w.inflight <- struct{}{}:
			case <-j.ctx.Done():
				errs[i] = j.ctx.Err()
				return
			}
			defer func() { <-b.w.inflight }()
			res, err := b.w.cli.Attend(j.ctx, j.op.Q, j.op.K, j.op.V, client.AttendOptions{
				Overrides: elsa.Overrides{Thr: j.op.Thr, Backend: j.op.Backend},
				HeadDim:   b.opts.HeadDim,
				HashBits:  b.opts.HashBits,
				Seed:      b.opts.Seed,
				Quantized: b.opts.Quantized,
			})
			if err != nil {
				errs[i] = b.classify(err)
				return
			}
			b.w.recover()
			outs[i] = &elsa.Output{
				Context:           res.Context,
				CandidateFraction: res.CandidateFraction,
				FallbackQueries:   res.FallbackQueries,
			}
		}(i, j)
	}
	wg.Wait()
	return outs, errs
}

// decodeBatch materializes each session's prefix onto the wire as a
// one-query /v1/attend op with the session's pinned threshold, so decode
// batches from the continuous loop ride the existing remote worker
// protocol — fleet mode batches too. Rows() aliases the stream's storage
// without copying elements, which is safe here because the session's
// submit/complete handoff blocks appends while the query is in flight.
// Only float-mode sets ever offload decode (see pickShardDecode): a
// quantized worker re-quantizes key norms on ingest where the stream
// stored them unquantized, which would break decode's bit-identity
// guarantee.
func (b *remoteBackend) decodeBatch(jobs []*job) []error {
	errs := make([]error, len(jobs))
	b.w.metrics.ObserveRemoteOps(b.w.addr, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j *job) {
			defer wg.Done()
			select {
			case b.w.inflight <- struct{}{}:
			case <-j.ctx.Done():
				errs[i] = j.ctx.Err()
				return
			}
			defer func() { <-b.w.inflight }()
			dec := j.dec
			keys, values := dec.stream.Rows()
			res, err := b.w.cli.Attend(j.ctx, [][]float32{dec.q}, keys, values, client.AttendOptions{
				Overrides: elsa.Overrides{Thr: &dec.thr, Backend: dec.backend},
				HeadDim:   b.opts.HeadDim,
				HashBits:  b.opts.HashBits,
				Seed:      b.opts.Seed,
				Quantized: b.opts.Quantized,
			})
			if err != nil {
				errs[i] = b.classify(err)
				return
			}
			b.w.recover()
			dec.out = append(dec.out[:0], res.Context[0]...)
			dec.stats = elsa.StreamStats{
				Candidates: int(res.CandidateFraction*float64(dec.stream.Len()) + 0.5),
				Fallback:   res.FallbackQueries > 0,
			}
		}(i, j)
	}
	wg.Wait()
	return errs
}

// classify sorts one remote failure into the dispatcher's retry taxonomy
// and feeds the worker's health state: transport faults and worker 5xx
// count toward ejection and reroute; worker overload (429/503) reroutes
// without blaming health; everything else is terminal for the op.
func (b *remoteBackend) classify(err error) error {
	var api *client.APIError
	if errors.As(err, &api) {
		switch {
		case api.Status == http.StatusTooManyRequests || api.Status == http.StatusServiceUnavailable:
			return &workerError{addr: b.w.addr, err: err, retryable: true}
		case api.Status >= 500:
			b.w.fault()
			return &workerError{addr: b.w.addr, err: err, retryable: true}
		default:
			return &workerError{addr: b.w.addr, err: err, retryable: false}
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The requester is gone or out of budget; says nothing about the
		// worker and there is no time left to reroute.
		return err
	}
	// Transport-level failure: connection refused, reset, EOF — the
	// classic signature of a dead or dying host.
	b.w.fault()
	return &workerError{addr: b.w.addr, err: err, retryable: true}
}
