package serve

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"elsa"
	"elsa/internal/serve/cluster"
	"elsa/serve/client"
)

// heartbeatMiss is how many missed heartbeat intervals expire a dynamic
// member to gone.
const heartbeatMiss = 3

// placementWalk bounds how many ring successors a placement tries before
// falling back to rotation. Deep walks only happen when nearly the whole
// fleet is unroutable, where the fallback scan is just as good.
const placementWalk = 8

// clusterView glues the control plane (membership table + hash ring) to
// the data path (worker fleet, dispatch shards, session placement). It
// owns the transitions: a join admits a worker and gives every replica
// set a lane to it; a drain pulls the member off the ring and blocks new
// sessions; expired heartbeats retire the member entirely.
type clusterView struct {
	table      *cluster.Table
	fleet      *workerSet
	pool       *enginePool
	metrics    *Metrics
	local      int // local replica lanes contributed to the ring
	sweepEvery time.Duration

	stop chan struct{}
	wg   sync.WaitGroup

	// ringMu guards the cached ring, rebuilt only when the table version
	// moves — placement lookups between membership changes are pure reads.
	ringMu      sync.Mutex
	ring        *cluster.Ring
	ringVersion uint64
}

func newClusterView(table *cluster.Table, fleet *workerSet, pool *enginePool, local int, sweepEvery time.Duration, m *Metrics) *clusterView {
	return &clusterView{
		table:      table,
		fleet:      fleet,
		pool:       pool,
		metrics:    m,
		local:      local,
		sweepEvery: sweepEvery,
		stop:       make(chan struct{}),
	}
}

// start launches the heartbeat-expiry sweeper.
func (cv *clusterView) start() {
	cv.wg.Add(1)
	go cv.sweepLoop()
}

// close stops the sweeper.
func (cv *clusterView) close() {
	close(cv.stop)
	cv.wg.Wait()
}

func (cv *clusterView) sweepLoop() {
	defer cv.wg.Done()
	t := time.NewTicker(cv.sweepEvery)
	defer t.Stop()
	for {
		select {
		case <-cv.stop:
			return
		case <-t.C:
			cv.sweep()
		}
	}
}

// sweep retires members that are overdue on heartbeats AND whose probes
// are failing. Both signals are required: heartbeats alone can stall on
// a live host (a starved heartbeater, a long GC pause), and a member the
// frontend is actively confirming healthy must never be expired out of
// the ring. A genuinely dead host fails both within a few intervals.
func (cv *clusterView) sweep() {
	for _, addr := range cv.table.Overdue(heartbeatMiss) {
		w := cv.fleet.get(addr)
		if w != nil && w.isHealthy() {
			continue
		}
		if cv.table.MarkGone(addr) {
			if w != nil {
				w.setGone(true)
			}
			cv.metrics.ObserveMemberExpired()
		}
	}
}

// join processes one POST /v1/cluster/join (a registration or a
// heartbeat): upsert the membership entry, admit the worker into the
// fleet, and — for a brand-new worker — give every live replica set a
// dispatch lane to it. Returns the member's state and whether this call
// changed membership (created or revived a member).
func (cv *clusterView) join(addr string, capacity cluster.Capacity, interval time.Duration, draining bool) (cluster.State, bool) {
	state, changed := cv.table.Upsert(addr, capacity, interval, draining)
	w, created := cv.fleet.add(addr)
	if w == nil {
		// The fleet is closed: the server is shutting down. Report the
		// table's answer; nothing routes anymore anyway.
		return state, changed
	}
	if created {
		cv.pool.attachWorker(w)
		changed = true
	}
	if changed {
		// A created or revived member starts with a clean slate: not gone,
		// not draining, failure streak forgiven (setGone(false) does all
		// three), probed immediately below.
		w.setGone(false)
	}
	if state == cluster.StateDraining {
		w.setDraining(true)
	}
	if changed && state == cluster.StateJoining {
		// Probe off-request so the join reply is fast, but immediately:
		// activation should take one round-trip, not one probe interval.
		go cv.fleet.probeOnce(w)
	}
	return state, changed
}

// markDraining is the operator-initiated drain of one member (POST
// /v1/cluster/drain): the member leaves the ring, its worker stops
// taking new sessions and one-shot routing, pinned sessions keep flowing.
func (cv *clusterView) markDraining(addr string) bool {
	transitioned := cv.table.SetDraining(addr)
	if w := cv.fleet.get(addr); w != nil {
		w.setDraining(true)
	}
	if transitioned {
		cv.metrics.ObserveMemberDraining()
	}
	return transitioned
}

// onProbe feeds probe outcomes into membership: the first healthy probe
// of a joining member activates it (it starts owning ring keyspace), and
// a worker reporting "draining" status — however its drain was initiated
// — is marked draining here, so even static workers drained directly
// (bypassing the frontend) stop receiving new sessions within one probe.
func (cv *clusterView) onProbe(w *worker, h *client.Health, err error) {
	if err != nil || h == nil {
		return
	}
	if h.Status == "draining" {
		if cv.table.SetDraining(w.addr) {
			cv.metrics.ObserveMemberDraining()
		}
		w.setDraining(true)
		return
	}
	// A passing probe refreshes the liveness deadline too: heartbeat
	// expiry is for members that are silent AND unprobeable, not for a
	// reachable worker whose heartbeater is momentarily behind.
	cv.table.Touch(w.addr)
	if cv.table.Activate(w.addr) {
		cv.metrics.ObserveMemberActivated()
	}
}

// place maps a new session's key onto the fleet via the consistent-hash
// ring: the key's owner if routable, else the next routable successor in
// ring order. Local replica lanes sit on the ring as "local/<i>" members
// with weight 1. Ring misses (empty ring, every successor unroutable)
// fall back to the legacy rotation, so a fleet mid-churn still places
// sessions wherever capacity remains.
func (cv *clusterView) place(set *replicaSet, key string) (*elsa.Engine, *worker) {
	if r := cv.currentRing(); r.Len() > 0 {
		for _, member := range r.Successors(key, placementWalk) {
			if idx, ok := localRingIndex(member); ok {
				if idx < len(set.engines) {
					return set.engines[idx], nil
				}
				continue
			}
			if w := cv.fleet.get(member); w != nil && w.routable() {
				return nil, w
			}
		}
	}
	return set.sessionTarget()
}

// currentRing returns the ring for the table's current version,
// rebuilding it only when membership actually changed.
func (cv *clusterView) currentRing() *cluster.Ring {
	version, weights := cv.table.ActiveWeights()
	cv.ringMu.Lock()
	defer cv.ringMu.Unlock()
	if cv.ring != nil && cv.ringVersion == version {
		return cv.ring
	}
	for i := 0; i < cv.local; i++ {
		weights["local/"+strconv.Itoa(i)] = 1
	}
	cv.ring = cluster.NewRing(weights, 0)
	cv.ringVersion = version
	return cv.ring
}

// localRingIndex parses a "local/<i>" ring member into its replica index.
func localRingIndex(member string) (int, bool) {
	rest, ok := strings.CutPrefix(member, "local/")
	if !ok {
		return 0, false
	}
	idx, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return idx, true
}
