package autoscale

import (
	"context"
	"fmt"
	"time"

	"elsa/serve/client"
)

// SnapshotFromCluster converts a typed GET /v1/cluster reply into a
// policy snapshot: the signals block collapses to the fleet-wide totals
// the bands act on (shed rate summed across priority classes), and the
// membership targets map field-for-field.
func SnapshotFromCluster(info *client.ClusterInfo) Snapshot {
	snap := Snapshot{
		Signals: Signals{
			QueueDepth: info.Signals.QueueDepth,
			MeanBatch:  info.Signals.MeanBatch,
		},
		Members: make([]Member, 0, len(info.Members)),
		Version: info.Version,
	}
	for _, r := range info.Signals.ShedRateByClass {
		snap.Signals.ShedRate += r
	}
	for _, m := range info.Members {
		snap.Members = append(snap.Members, Member{
			Addr:           m.Addr,
			State:          m.State,
			Static:         m.Static,
			Weight:         m.Weight,
			MaxSessions:    m.MaxSessions,
			PinnedSessions: m.PinnedSessions,
		})
	}
	return snap
}

// Controller closes the loop: it polls one frontend's cluster view on a
// fixed cadence, feeds each snapshot to the policy, and applies the
// advice through the frontend's own API — scale-in via
// POST /v1/cluster/drain, rebalance via POST /v1/cluster/rebalance.
// Scale-out needs capacity the controller cannot conjure, so it is
// surfaced through OnScaleOut (elsactl logs it; an operator hook or the
// fleet manager launches the worker, which self-registers on boot).
type Controller struct {
	// Client points at the frontend being scaled.
	Client *client.Client
	// Policy makes the decisions; NewController installs a default one.
	Policy *Policy
	// Interval is the polling cadence (default 2s).
	Interval time.Duration
	// DryRun logs advice without acting on it.
	DryRun bool
	// OnScaleOut, when set, receives scale-out advice.
	OnScaleOut func(Advice)
	// OnAdvice, when set, observes every decision after it was applied
	// (tests and elsactl's -once mode hook here). Err is the action's
	// failure, nil for none/dry-run.
	OnAdvice func(Advice, error)
	// Logf, when set, receives one line per non-None decision.
	Logf func(format string, args ...any)
}

// NewController returns a controller polling the frontend at base via
// the default policy. Tune fields before calling Run.
func NewController(base string) *Controller {
	return &Controller{
		Client:   client.New(base),
		Policy:   New(Config{}),
		Interval: 2 * time.Second,
	}
}

func (c *Controller) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Step performs one poll-decide-act cycle and returns the advice. The
// returned error is a poll failure (no decision was made) or the applied
// action's failure.
func (c *Controller) Step(ctx context.Context) (Advice, error) {
	info, err := c.Client.Cluster(ctx)
	if err != nil {
		return Advice{}, fmt.Errorf("poll cluster: %w", err)
	}
	adv := c.Policy.Decide(SnapshotFromCluster(info))
	err = c.apply(ctx, adv)
	if c.OnAdvice != nil {
		c.OnAdvice(adv, err)
	}
	return adv, err
}

func (c *Controller) apply(ctx context.Context, adv Advice) error {
	if adv.Action == ActionNone {
		return nil
	}
	if c.DryRun {
		c.logf("autoscale (dry-run): %s", adv)
		return nil
	}
	c.logf("autoscale: %s", adv)
	switch adv.Action {
	case ActionScaleOut:
		if c.OnScaleOut != nil {
			c.OnScaleOut(adv)
		}
		return nil
	case ActionScaleIn:
		st, err := c.Client.DrainMember(ctx, adv.Target)
		if err != nil {
			return fmt.Errorf("drain %s: %w", adv.Target, err)
		}
		c.logf("autoscale: drain %s started (pinned=%d relocated=%d)",
			st.Addr, st.PinnedSessions, st.Relocated)
		return nil
	case ActionRebalance:
		st, err := c.Client.RebalanceMember(ctx, adv.Target, adv.Moves)
		if err != nil {
			return fmt.Errorf("rebalance toward %s: %w", adv.Target, err)
		}
		c.logf("autoscale: rebalance moved %d sessions onto %s (now pinned=%d)",
			st.Moved, st.Addr, st.PinnedSessions)
		// Zero moves means the ring owns nothing more on the target; tell
		// the policy so it stops advising this exact rebalance until the
		// membership version moves.
		c.Policy.NoteRebalance(adv.Target, st.Moved)
		return nil
	}
	return nil
}

// Run polls until ctx ends. Individual step failures are logged and the
// loop keeps going — a transient frontend error must not kill the
// controller; only ctx cancellation returns (with ctx.Err()).
func (c *Controller) Run(ctx context.Context) error {
	interval := c.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if _, err := c.Step(ctx); err != nil && ctx.Err() == nil {
				c.logf("autoscale: %v", err)
			}
		}
	}
}
