// Package autoscale closes the serving fleet's scaling loop: a
// hysteresis-banded policy over the frontend's windowed load signals
// (queue depth, shed rate, batch occupancy) that advises scale-out,
// scale-in via drain, or a proactive rebalance toward an under-loaded
// member — and a controller that polls GET /v1/cluster and applies the
// advice through the drain/rebalance endpoints.
//
// The policy is deliberately a function of (state, snapshot): no
// clocks, no I/O. Hysteresis comes from streak counting — a band must
// hold for HoldSteps consecutive snapshots before advice fires, and a
// cooldown suppresses further advice while the fleet reacts — so a
// controller polling a noisy signal cannot flap. One piece of feedback
// flows back in: NoteRebalance reports how many sessions a rebalance
// actually moved, because the fair-share band is blind to
// consistent-hash ownership — a member can legitimately own less than
// its fair share, and only the mover knows the ring has nothing more
// for it.
package autoscale

import (
	"fmt"
	"math"
	"sort"
)

// Member states as GET /v1/cluster reports them.
const (
	StateJoining  = "joining"
	StateActive   = "active"
	StateDraining = "draining"
)

// Signals is the fleet-wide load part of one snapshot, taken from the
// cluster view's signals block. ShedRate must be a windowed rate
// (events/s over the last interval), never a lifetime counter — the
// bands act on current pressure.
type Signals struct {
	// QueueDepth is the frontend's total queued ops.
	QueueDepth int64
	// ShedRate is the windowed shed rate in events/s, summed across
	// priority classes.
	ShedRate float64
	// MeanBatch is the mean dispatched micro-batch size (occupancy).
	MeanBatch float64
}

// Member is one fleet member's placement state.
type Member struct {
	Addr  string
	State string
	// Static members were seeded from -workers flags: the policy may
	// drain them for a rebalance but never advises scaling them away.
	Static         bool
	Weight         int
	MaxSessions    int
	PinnedSessions int
}

// Snapshot is one observation of the fleet, fed to Decide.
type Snapshot struct {
	Signals Signals
	Members []Member
	// Version is the membership table version the snapshot was taken at.
	// It only moves on placement-relevant changes (join, activate, drain,
	// expiry, weight), never on steady heartbeats — the policy uses it to
	// expire a NoteRebalance settlement once membership shifts.
	Version uint64
}

// Action is the kind of advice a decision yields.
type Action int

const (
	// ActionNone means hold steady.
	ActionNone Action = iota
	// ActionScaleOut asks for more capacity. The policy cannot launch
	// workers itself; the controller surfaces this to its OnScaleOut
	// hook (or the operator).
	ActionScaleOut
	// ActionScaleIn drains the Target member; its pinned sessions
	// live-migrate away and it can then be retired.
	ActionScaleIn
	// ActionRebalance migrates up to Moves sessions toward the Target
	// member — the under-loaded one, typically a fresh joiner.
	ActionRebalance
)

func (a Action) String() string {
	switch a {
	case ActionScaleOut:
		return "scale-out"
	case ActionScaleIn:
		return "scale-in"
	case ActionRebalance:
		return "rebalance"
	default:
		return "none"
	}
}

// Advice is one decision.
type Advice struct {
	Action Action
	// Target is the member a scale-in drains or a rebalance moves
	// sessions toward; empty otherwise.
	Target string
	// Moves bounds a rebalance's migrations (0 lets the frontend move
	// every session placement prefers on the target).
	Moves int
	// Reason is the human-readable trigger, for logs.
	Reason string
}

func (a Advice) String() string {
	s := a.Action.String()
	if a.Target != "" {
		s += " target=" + a.Target
	}
	if a.Moves > 0 {
		s += fmt.Sprintf(" moves=%d", a.Moves)
	}
	if a.Reason != "" {
		s += " (" + a.Reason + ")"
	}
	return s
}

// Config tunes the policy bands. Zero values select the defaults.
type Config struct {
	// ScaleOutQueue and ScaleOutShedRate are the hot band's entry
	// thresholds: a snapshot at or above either is hot (defaults 16
	// queued ops, 0.5 sheds/s).
	ScaleOutQueue    int64
	ScaleOutShedRate float64
	// ScaleInQueue is the cold band's exit threshold: a snapshot is cold
	// only at or below it with a zero shed rate (default 1; negative
	// means 0).
	ScaleInQueue int64
	// HoldSteps is how many consecutive hot (cold) snapshots must
	// accumulate before scale-out (scale-in) fires — the hysteresis
	// (default 3).
	HoldSteps int
	// CooldownSteps suppresses further advice for this many snapshots
	// after any advice fires, so the fleet can react (default 5).
	CooldownSteps int
	// MinMembers floors scale-in: never advise draining below this many
	// active members (default 1).
	MinMembers int
	// RebalanceImbalance triggers a rebalance when an active member
	// holds less than this fraction of the mean pinned-session count
	// (default 0.5; set >= 1 to rebalance on any deficit).
	RebalanceImbalance float64
}

func (c *Config) setDefaults() {
	if c.ScaleOutQueue <= 0 {
		c.ScaleOutQueue = 16
	}
	if c.ScaleOutShedRate <= 0 {
		c.ScaleOutShedRate = 0.5
	}
	if c.ScaleInQueue < 0 {
		c.ScaleInQueue = 0
	} else if c.ScaleInQueue == 0 {
		c.ScaleInQueue = 1
	}
	if c.HoldSteps <= 0 {
		c.HoldSteps = 3
	}
	if c.CooldownSteps <= 0 {
		c.CooldownSteps = 5
	}
	if c.MinMembers <= 0 {
		c.MinMembers = 1
	}
	if c.RebalanceImbalance <= 0 {
		c.RebalanceImbalance = 0.5
	}
}

// Policy is the stateful decision maker: band streaks and the cooldown
// live here. Not safe for concurrent use; a controller owns one.
type Policy struct {
	cfg      Config
	hot      int
	cold     int
	cooldown int
	// settled maps rebalance targets a zero-move rebalance proved the
	// ring cannot fill further to the membership version that held then.
	// A settled target is skipped by the fair-share band — without this
	// the policy would re-advise the same no-op rebalance every cooldown,
	// and each firing would clear the cold streak, starving scale-in.
	settled map[string]uint64
	// lastVersion is the membership version of the last snapshot Decide
	// saw; NoteRebalance keys settlements to it.
	lastVersion uint64
}

// New returns a policy with cfg's zero fields defaulted.
func New(cfg Config) *Policy {
	cfg.setDefaults()
	return &Policy{cfg: cfg}
}

// Config reports the policy's resolved configuration.
func (p *Policy) Config() Config { return p.cfg }

// Decide consumes one snapshot and returns the advice it warrants.
// Precedence: drain-in-progress suppresses everything (one structural
// change at a time); a held hot streak advises scale-out; an imbalanced
// fleet advises a rebalance toward its most under-loaded active member;
// a held cold streak advises draining the least-loaded dynamic member.
func (p *Policy) Decide(s Snapshot) Advice {
	p.lastVersion = s.Version
	// A drain in flight means the fleet is mid-transition: deciding on
	// half-moved sessions would double-act. Streaks freeze rather than
	// reset, so pressure that persists through the drain fires promptly
	// after it completes.
	for _, m := range s.Members {
		if m.State == StateDraining {
			return Advice{Action: ActionNone, Reason: "drain in progress on " + m.Addr}
		}
	}

	hot := s.Signals.QueueDepth >= p.cfg.ScaleOutQueue || s.Signals.ShedRate >= p.cfg.ScaleOutShedRate
	cold := s.Signals.QueueDepth <= p.cfg.ScaleInQueue && s.Signals.ShedRate == 0
	switch {
	case hot:
		p.hot, p.cold = p.hot+1, 0
	case cold:
		p.hot, p.cold = 0, p.cold+1
	default:
		// Dead band between the thresholds: reset both streaks, so only
		// sustained pressure on one side ever fires.
		p.hot, p.cold = 0, 0
	}
	if p.cooldown > 0 {
		p.cooldown--
		return Advice{Action: ActionNone, Reason: "cooling down"}
	}

	if p.hot >= p.cfg.HoldSteps {
		p.fired()
		return Advice{
			Action: ActionScaleOut,
			Reason: fmt.Sprintf("queue=%d shed_rate=%.2f/s held hot for %d steps",
				s.Signals.QueueDepth, s.Signals.ShedRate, p.hot),
		}
	}

	if adv, ok := p.rebalance(s); ok {
		p.fired()
		return adv
	}

	if p.cold >= p.cfg.HoldSteps {
		if adv, ok := p.scaleIn(s); ok {
			p.fired()
			return adv
		}
	}
	return Advice{Action: ActionNone}
}

// fired arms the cooldown and clears both streaks after advice fires.
func (p *Policy) fired() {
	p.cooldown = p.cfg.CooldownSteps
	p.hot, p.cold = 0, 0
}

// NoteRebalance feeds back what a rebalance the policy advised actually
// achieved. Zero moves settles the target at the snapshot's membership
// version: the ring owns nothing more there, so the fair-share band
// stops advising it (and stops burning streaks on a no-op) until any
// membership change bumps the version. A productive rebalance clears
// the settlement.
func (p *Policy) NoteRebalance(target string, moved int) {
	if moved > 0 {
		delete(p.settled, target)
		return
	}
	if p.settled == nil {
		p.settled = make(map[string]uint64)
	}
	p.settled[target] = p.lastVersion
}

// rebalance looks for an active member holding materially less than its
// fair share of pinned sessions and advises moving the deficit toward
// it. Fair share is the mean over active members; the threshold fraction
// keeps small wobbles from causing migration churn.
func (p *Policy) rebalance(s Snapshot) (Advice, bool) {
	var active []Member
	total := 0
	for _, m := range s.Members {
		if m.State == StateActive {
			active = append(active, m)
			total += m.PinnedSessions
		}
	}
	if len(active) < 2 || total == 0 {
		return Advice{}, false
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].PinnedSessions != active[j].PinnedSessions {
			return active[i].PinnedSessions < active[j].PinnedSessions
		}
		return active[i].Addr < active[j].Addr
	})
	mean := float64(total) / float64(len(active))
	least := active[0]
	if float64(least.PinnedSessions) >= p.cfg.RebalanceImbalance*mean {
		return Advice{}, false
	}
	if v, ok := p.settled[least.Addr]; ok {
		if v == s.Version {
			return Advice{}, false
		}
		delete(p.settled, least.Addr) // membership moved on; retry is fair game
	}
	moves := int(math.Ceil(mean)) - least.PinnedSessions
	if moves < 1 {
		return Advice{}, false
	}
	return Advice{
		Action: ActionRebalance,
		Target: least.Addr,
		Moves:  moves,
		Reason: fmt.Sprintf("%s holds %d pinned sessions vs fleet mean %.1f",
			least.Addr, least.PinnedSessions, mean),
	}, true
}

// scaleIn picks the drain target for a held cold streak: the dynamic
// (non-static) active member with the fewest pinned sessions, provided
// the fleet stays at or above MinMembers active members afterwards.
func (p *Policy) scaleIn(s Snapshot) (Advice, bool) {
	activeCount := 0
	var target *Member
	for i := range s.Members {
		m := &s.Members[i]
		if m.State != StateActive {
			continue
		}
		activeCount++
		if m.Static {
			continue
		}
		if target == nil ||
			m.PinnedSessions < target.PinnedSessions ||
			(m.PinnedSessions == target.PinnedSessions && m.Addr < target.Addr) {
			target = m
		}
	}
	if target == nil || activeCount <= p.cfg.MinMembers {
		return Advice{}, false
	}
	return Advice{
		Action: ActionScaleIn,
		Target: target.Addr,
		Reason: fmt.Sprintf("idle for %d steps; %s holds fewest pinned sessions (%d)",
			p.cold, target.Addr, target.PinnedSessions),
	}, true
}
