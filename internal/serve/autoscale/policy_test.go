package autoscale

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"elsa/serve/client"
)

// twoActive is a balanced two-member fleet used as the default topology.
func twoActive() []Member {
	return []Member{
		{Addr: "a:1", State: StateActive, PinnedSessions: 4},
		{Addr: "b:2", State: StateActive, PinnedSessions: 4},
	}
}

func snap(sig Signals, members []Member) Snapshot {
	return Snapshot{Signals: sig, Members: members}
}

// TestPolicyBands exercises the band edges and hysteresis of Decide with
// a freshly defaulted policy fed a fixed sequence of snapshots.
func TestPolicyBands(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		steps []Snapshot
		// want is the expected action per step, parallel to steps.
		want []Action
	}{
		{
			name: "queue at threshold fires after hold",
			steps: []Snapshot{
				snap(Signals{QueueDepth: 16}, twoActive()),
				snap(Signals{QueueDepth: 16}, twoActive()),
				snap(Signals{QueueDepth: 16}, twoActive()),
			},
			want: []Action{ActionNone, ActionNone, ActionScaleOut},
		},
		{
			name: "queue below threshold never fires",
			steps: []Snapshot{
				snap(Signals{QueueDepth: 15}, twoActive()),
				snap(Signals{QueueDepth: 15}, twoActive()),
				snap(Signals{QueueDepth: 15}, twoActive()),
				snap(Signals{QueueDepth: 15}, twoActive()),
			},
			want: []Action{ActionNone, ActionNone, ActionNone, ActionNone},
		},
		{
			name: "shed rate alone fires scale-out",
			steps: []Snapshot{
				snap(Signals{ShedRate: 0.5}, twoActive()),
				snap(Signals{ShedRate: 0.5}, twoActive()),
				snap(Signals{ShedRate: 0.5}, twoActive()),
			},
			want: []Action{ActionNone, ActionNone, ActionScaleOut},
		},
		{
			name: "interrupted hot streak resets",
			steps: []Snapshot{
				snap(Signals{QueueDepth: 20}, twoActive()),
				snap(Signals{QueueDepth: 20}, twoActive()),
				snap(Signals{QueueDepth: 8}, twoActive()), // dead band: resets
				snap(Signals{QueueDepth: 20}, twoActive()),
				snap(Signals{QueueDepth: 20}, twoActive()),
				snap(Signals{QueueDepth: 20}, twoActive()),
			},
			want: []Action{ActionNone, ActionNone, ActionNone, ActionNone, ActionNone, ActionScaleOut},
		},
		{
			name: "cooldown suppresses the next decision",
			cfg:  Config{HoldSteps: 1, CooldownSteps: 2},
			steps: []Snapshot{
				snap(Signals{QueueDepth: 99}, twoActive()),
				snap(Signals{QueueDepth: 99}, twoActive()),
				snap(Signals{QueueDepth: 99}, twoActive()),
				snap(Signals{QueueDepth: 99}, twoActive()),
			},
			want: []Action{ActionScaleOut, ActionNone, ActionNone, ActionScaleOut},
		},
		{
			name: "idle fleet drains the dynamic member",
			steps: []Snapshot{
				snap(Signals{QueueDepth: 0}, []Member{
					{Addr: "a:1", State: StateActive, Static: true, PinnedSessions: 2},
					{Addr: "b:2", State: StateActive, PinnedSessions: 2},
				}),
				snap(Signals{QueueDepth: 1}, []Member{
					{Addr: "a:1", State: StateActive, Static: true, PinnedSessions: 2},
					{Addr: "b:2", State: StateActive, PinnedSessions: 2},
				}),
				snap(Signals{QueueDepth: 0}, []Member{
					{Addr: "a:1", State: StateActive, Static: true, PinnedSessions: 2},
					{Addr: "b:2", State: StateActive, PinnedSessions: 2},
				}),
			},
			want: []Action{ActionNone, ActionNone, ActionScaleIn},
		},
		{
			name: "idle with nonzero shed rate is not cold",
			steps: []Snapshot{
				snap(Signals{QueueDepth: 0, ShedRate: 0.1}, twoActive()),
				snap(Signals{QueueDepth: 0, ShedRate: 0.1}, twoActive()),
				snap(Signals{QueueDepth: 0, ShedRate: 0.1}, twoActive()),
				snap(Signals{QueueDepth: 0, ShedRate: 0.1}, twoActive()),
			},
			want: []Action{ActionNone, ActionNone, ActionNone, ActionNone},
		},
		{
			name: "scale-in never breaches the member floor",
			cfg:  Config{MinMembers: 2},
			steps: []Snapshot{
				snap(Signals{}, twoActive()),
				snap(Signals{}, twoActive()),
				snap(Signals{}, twoActive()),
				snap(Signals{}, twoActive()),
			},
			want: []Action{ActionNone, ActionNone, ActionNone, ActionNone},
		},
		{
			name: "all-static fleet never scales in",
			steps: []Snapshot{
				snap(Signals{}, []Member{
					{Addr: "a:1", State: StateActive, Static: true},
					{Addr: "b:2", State: StateActive, Static: true},
				}),
				snap(Signals{}, []Member{
					{Addr: "a:1", State: StateActive, Static: true},
					{Addr: "b:2", State: StateActive, Static: true},
				}),
				snap(Signals{}, []Member{
					{Addr: "a:1", State: StateActive, Static: true},
					{Addr: "b:2", State: StateActive, Static: true},
				}),
			},
			want: []Action{ActionNone, ActionNone, ActionNone},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(tc.cfg)
			if len(tc.want) != len(tc.steps) {
				t.Fatalf("bad test: %d steps, %d wants", len(tc.steps), len(tc.want))
			}
			for i, s := range tc.steps {
				adv := p.Decide(s)
				if adv.Action != tc.want[i] {
					t.Fatalf("step %d: got %v (%s), want %v", i, adv.Action, adv.Reason, tc.want[i])
				}
			}
		})
	}
}

// TestPolicyDrainSuppression pins that a draining member suppresses all
// advice without resetting streaks: hot pressure held through the drain
// fires on the first post-drain snapshot.
func TestPolicyDrainSuppression(t *testing.T) {
	p := New(Config{})
	draining := []Member{
		{Addr: "a:1", State: StateActive, PinnedSessions: 4},
		{Addr: "b:2", State: StateDraining, PinnedSessions: 4},
	}
	hot := Signals{QueueDepth: 100, ShedRate: 3}
	// Build a full hot streak, then enter drain: even far past HoldSteps
	// nothing fires while the drain is in flight.
	p.Decide(snap(hot, twoActive()))
	p.Decide(snap(hot, twoActive()))
	for i := 0; i < 5; i++ {
		adv := p.Decide(snap(hot, draining))
		if adv.Action != ActionNone {
			t.Fatalf("drain step %d: got %v, want none", i, adv.Action)
		}
		if !strings.Contains(adv.Reason, "drain in progress") {
			t.Fatalf("drain step %d: reason %q missing suppression marker", i, adv.Reason)
		}
	}
	// Drain completes; the frozen streak means one more hot snapshot
	// completes the hold and fires.
	adv := p.Decide(snap(hot, twoActive()))
	if adv.Action != ActionScaleOut {
		t.Fatalf("post-drain: got %v (%s), want scale-out", adv.Action, adv.Reason)
	}
}

// TestPolicyRebalance covers target selection for the rebalance advice.
func TestPolicyRebalance(t *testing.T) {
	cases := []struct {
		name       string
		members    []Member
		wantAction Action
		wantTarget string
		wantMoves  int
	}{
		{
			name: "fresh joiner with zero sessions attracts the deficit",
			members: []Member{
				{Addr: "a:1", State: StateActive, PinnedSessions: 6},
				{Addr: "b:2", State: StateActive, PinnedSessions: 6},
				{Addr: "c:3", State: StateActive, PinnedSessions: 0},
			},
			wantAction: ActionRebalance,
			wantTarget: "c:3",
			wantMoves:  4,
		},
		{
			name: "balanced fleet stays put",
			members: []Member{
				{Addr: "a:1", State: StateActive, PinnedSessions: 4},
				{Addr: "b:2", State: StateActive, PinnedSessions: 4},
			},
			wantAction: ActionNone,
		},
		{
			name: "mild imbalance under the threshold stays put",
			members: []Member{
				{Addr: "a:1", State: StateActive, PinnedSessions: 5},
				{Addr: "b:2", State: StateActive, PinnedSessions: 3},
			},
			wantAction: ActionNone,
		},
		{
			name: "joining member is not yet a rebalance target",
			members: []Member{
				{Addr: "a:1", State: StateActive, PinnedSessions: 6},
				{Addr: "c:3", State: StateJoining, PinnedSessions: 0},
			},
			wantAction: ActionNone,
		},
		{
			name: "single member cannot rebalance",
			members: []Member{
				{Addr: "a:1", State: StateActive, PinnedSessions: 8},
			},
			wantAction: ActionNone,
		},
		{
			name: "empty fleet stays put",
			members: []Member{
				{Addr: "a:1", State: StateActive},
				{Addr: "b:2", State: StateActive},
			},
			wantAction: ActionNone,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(Config{})
			// Mid-band load: neither hot nor cold, so only rebalance can fire.
			adv := p.Decide(snap(Signals{QueueDepth: 8}, tc.members))
			if adv.Action != tc.wantAction {
				t.Fatalf("got %v (%s), want %v", adv.Action, adv.Reason, tc.wantAction)
			}
			if adv.Action != ActionRebalance {
				return
			}
			if adv.Target != tc.wantTarget {
				t.Fatalf("target %q, want %q", adv.Target, tc.wantTarget)
			}
			if adv.Moves != tc.wantMoves {
				t.Fatalf("moves %d, want %d", adv.Moves, tc.wantMoves)
			}
		})
	}
}

// TestPolicyRebalanceArmsCooldown pins that a fired rebalance suppresses
// an immediate repeat, so a slow migration cannot be double-driven.
func TestPolicyRebalanceArmsCooldown(t *testing.T) {
	p := New(Config{CooldownSteps: 3})
	skew := []Member{
		{Addr: "a:1", State: StateActive, PinnedSessions: 6},
		{Addr: "c:3", State: StateActive, PinnedSessions: 0},
	}
	if adv := p.Decide(snap(Signals{QueueDepth: 8}, skew)); adv.Action != ActionRebalance {
		t.Fatalf("first: got %v, want rebalance", adv.Action)
	}
	for i := 0; i < 3; i++ {
		if adv := p.Decide(snap(Signals{QueueDepth: 8}, skew)); adv.Action != ActionNone {
			t.Fatalf("cooldown step %d: got %v, want none", i, adv.Action)
		}
	}
	if adv := p.Decide(snap(Signals{QueueDepth: 8}, skew)); adv.Action != ActionRebalance {
		t.Fatalf("post-cooldown: got %v, want rebalance", adv.Action)
	}
}

// TestPolicyRebalanceSettlement pins the NoteRebalance feedback: a
// zero-move rebalance settles the target at the current membership
// version, the fair-share band then skips it — letting a cold streak
// build to scale-in instead of being cleared by no-op refires — and a
// version bump (any membership change) reopens the target.
func TestPolicyRebalanceSettlement(t *testing.T) {
	p := New(Config{HoldSteps: 2, CooldownSteps: 1})
	// The ring legitimately assigns b:2 less than its fair share: the
	// pinned counts are imbalanced but the mover has nothing to move.
	skew := []Member{
		{Addr: "a:1", State: StateActive, PinnedSessions: 7},
		{Addr: "b:2", State: StateActive, PinnedSessions: 1},
	}
	at := func(v uint64) Snapshot {
		s := snap(Signals{}, skew)
		s.Version = v
		return s
	}

	if adv := p.Decide(at(3)); adv.Action != ActionRebalance || adv.Target != "b:2" {
		t.Fatalf("first decide: got %v, want rebalance toward b:2", adv)
	}
	p.NoteRebalance("b:2", 0)

	// Settled: idle snapshots must now reach scale-in, not refire the
	// no-op rebalance (which would clear the cold streak every cooldown).
	var actions []Action
	for i := 0; i < 5; i++ {
		actions = append(actions, p.Decide(at(3)).Action)
	}
	sawScaleIn := false
	for _, a := range actions {
		if a == ActionRebalance {
			t.Fatalf("settled target re-advised: %v", actions)
		}
		if a == ActionScaleIn {
			sawScaleIn = true
		}
	}
	if !sawScaleIn {
		t.Fatalf("idle fleet never reached scale-in past the settled rebalance: %v", actions)
	}

	// A membership change reopens the target.
	p2 := New(Config{HoldSteps: 2, CooldownSteps: 1})
	if adv := p2.Decide(at(3)); adv.Action != ActionRebalance {
		t.Fatalf("p2 first decide: got %v", adv)
	}
	p2.NoteRebalance("b:2", 0)
	if adv := p2.Decide(at(3)); adv.Action == ActionRebalance {
		t.Fatalf("settled target re-advised at same version: %v", adv)
	}
	if adv := p2.Decide(at(4)); adv.Action != ActionRebalance || adv.Target != "b:2" {
		t.Fatalf("version bump should reopen the target: got %v", adv)
	}

	// A productive rebalance clears the settlement outright.
	p3 := New(Config{HoldSteps: 2, CooldownSteps: 1})
	if adv := p3.Decide(at(5)); adv.Action != ActionRebalance {
		t.Fatalf("p3 first decide: got %v", adv)
	}
	p3.NoteRebalance("b:2", 0)
	p3.NoteRebalance("b:2", 2)
	if adv := p3.Decide(at(5)); adv.Action != ActionNone {
		t.Fatalf("cooldown step: got %v, want none", adv)
	}
	if adv := p3.Decide(at(5)); adv.Action != ActionRebalance {
		t.Fatalf("cleared settlement should advise again: got %v", adv)
	}
}

// TestSnapshotFromCluster pins the client-view conversion, including the
// cross-class shed-rate sum.
func TestSnapshotFromCluster(t *testing.T) {
	info := &client.ClusterInfo{
		SchemaVersion: 1,
		Version:       7,
		Signals: client.ClusterSignals{
			QueueDepth:      12,
			ShedRateByClass: map[string]float64{"interactive": 0.3, "batch": 0.4},
			MeanBatch:       2.5,
		},
		Members: []client.MemberInfo{
			{Addr: "a:1", State: "active", Static: true, Weight: 2, MaxSessions: 8, PinnedSessions: 3},
			{Addr: "b:2", State: "joining"},
		},
	}
	got := SnapshotFromCluster(info)
	want := Snapshot{
		Signals: Signals{QueueDepth: 12, ShedRate: 0.7, MeanBatch: 2.5},
		Members: []Member{
			{Addr: "a:1", State: StateActive, Static: true, Weight: 2, MaxSessions: 8, PinnedSessions: 3},
			{Addr: "b:2", State: StateJoining},
		},
		Version: 7,
	}
	if math.Abs(got.Signals.ShedRate-want.Signals.ShedRate) > 1e-9 {
		t.Fatalf("shed rate %v, want %v", got.Signals.ShedRate, want.Signals.ShedRate)
	}
	got.Signals.ShedRate = want.Signals.ShedRate
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot mismatch:\n got %+v\nwant %+v", got, want)
	}
}
