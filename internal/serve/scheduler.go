package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"elsa"
)

// Errors surfaced by the scheduler to the HTTP layer.
var (
	// ErrQueueFull means the bounded scheduler queue is at capacity; the
	// caller should shed load (HTTP 429).
	ErrQueueFull = errors.New("serve: scheduler queue full")
	// ErrClosed means the server is draining for shutdown (HTTP 503).
	ErrClosed = errors.New("serve: server shutting down")
)

// batchKey identifies which pending micro-batch a request can join: ops
// only batch together when they run on the same pooled engine with the
// same threshold (AttendBatch applies one threshold to the whole batch).
type batchKey struct {
	entry *engineEntry
	thr   elsa.Threshold
}

// jobResult is what a dispatched job hands back to its waiting request.
type jobResult struct {
	out       *elsa.Output
	batchSize int
	err       error
}

// job is one queued attention op plus its completion channel.
type job struct {
	ctx    context.Context
	op     elsa.BatchOp
	result chan jobResult // buffered: dispatch never blocks on a gone requester
}

// pendingBatch accumulates jobs for one key until the window elapses or
// the batch fills.
type pendingBatch struct {
	jobs []*job
}

// scheduler implements dynamic micro-batching: the first request for a key
// opens a batching window; requests arriving within it coalesce into one
// AttendBatchContext call, mirroring how the accelerator fills its
// replicated attention modules from a request stream.
type scheduler struct {
	window   time.Duration
	maxBatch int
	maxQueue int
	workers  int
	metrics  *Metrics

	mu      sync.Mutex
	closed  bool
	queued  int
	pending map[batchKey]*pendingBatch
	wg      sync.WaitGroup
}

func newScheduler(window time.Duration, maxBatch, maxQueue, workers int, m *Metrics) *scheduler {
	return &scheduler{
		window:   window,
		maxBatch: maxBatch,
		maxQueue: maxQueue,
		workers:  workers,
		metrics:  m,
		pending:  make(map[batchKey]*pendingBatch),
	}
}

// submit enqueues one op and blocks until its batch is dispatched and
// computed, ctx is done, or the server refuses it (full queue / closing).
// The returned batch size is how many ops shared the dispatched batch.
func (s *scheduler) submit(ctx context.Context, key batchKey, op elsa.BatchOp) (*elsa.Output, int, error) {
	j := &job{ctx: ctx, op: op, result: make(chan jobResult, 1)}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if s.queued >= s.maxQueue {
		s.mu.Unlock()
		return nil, 0, ErrQueueFull
	}
	s.queued++
	s.metrics.SetQueueDepth(s.queued)
	b, ok := s.pending[key]
	if !ok {
		b = &pendingBatch{}
		s.pending[key] = b
		// First job for this key: open the batching window. The timer
		// flushes whatever has accumulated when it fires; pointer
		// identity guards against flushing a successor batch.
		time.AfterFunc(s.window, func() { s.flush(key, b) })
	}
	b.jobs = append(b.jobs, j)
	if len(b.jobs) >= s.maxBatch {
		s.dispatchLocked(key, b)
	}
	s.mu.Unlock()

	select {
	case r := <-j.result:
		return r.out, r.batchSize, r.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// flush dispatches batch b if it is still the pending batch for key.
func (s *scheduler) flush(key batchKey, b *pendingBatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending[key] == b {
		s.dispatchLocked(key, b)
	}
}

// dispatchLocked detaches b from the pending set and runs it. Callers hold
// s.mu; the wg.Add here pairs with close()'s wg.Wait so shutdown drains
// every dispatched batch.
func (s *scheduler) dispatchLocked(key batchKey, b *pendingBatch) {
	delete(s.pending, key)
	s.wg.Add(1)
	go s.run(key, b.jobs)
}

// run executes one detached batch: jobs whose context already expired are
// answered immediately, the rest go through the engine's batch worker pool
// in one call.
func (s *scheduler) run(key batchKey, jobs []*job) {
	defer s.wg.Done()
	live := make([]*job, 0, len(jobs))
	for _, j := range jobs {
		if err := j.ctx.Err(); err != nil {
			j.result <- jobResult{err: err}
			continue
		}
		live = append(live, j)
	}
	s.mu.Lock()
	s.queued -= len(jobs)
	s.metrics.SetQueueDepth(s.queued)
	s.mu.Unlock()
	if len(live) == 0 {
		return
	}
	ops := make([]elsa.BatchOp, len(live))
	for i, j := range live {
		ops[i] = j.op
	}
	s.metrics.ObserveBatch(len(live))
	// Each batch op runs elsa.Attend's pooled-workspace fast path: no
	// per-query allocations and no candidate-list collection (the serving
	// API only reports counts), so concurrent batches reuse warm buffers
	// from the engine's sync.Pool instead of churning the allocator.
	outs, err := key.entry.eng.AttendBatchContext(context.Background(), ops, key.thr, s.workers)
	if err != nil {
		for _, j := range live {
			j.result <- jobResult{err: err}
		}
		return
	}
	for i, j := range live {
		s.metrics.ObserveCandidateFraction(outs[i].CandidateFraction)
		j.result <- jobResult{out: outs[i], batchSize: len(live)}
	}
}

// close stops admission, dispatches every still-pending batch immediately,
// and waits for all in-flight batches to finish. Safe to call more than
// once.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	for key, b := range s.pending {
		s.dispatchLocked(key, b)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
