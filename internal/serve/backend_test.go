package serve

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"elsa"
)

// refEngine builds the reference engine matching the test server's
// implied configuration.
func refEngine(t *testing.T) *elsa.Engine {
	t.Helper()
	eng, err := elsa.New(elsa.Options{HeadDim: testDim, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func sameMatrix(a, b [][]float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestAttendBackendSelection drives the per-request backend selector on
// POST /v1/attend: each named backend's output must be bit-identical to
// the corresponding direct library call, an unknown name and a
// backend+approximate combination are both 400s.
func TestAttendBackendSelection(t *testing.T) {
	srv := New(Config{BatchWindow: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	rng := rand.New(rand.NewSource(61))
	q, k, v := genOp(rng, 4, 24)
	eng := refEngine(t)
	wantScan, err := eng.AttendLinearScan(q, k, v)
	if err != nil {
		t.Fatal(err)
	}
	wantScores, err := eng.Attend(q, k, v, elsa.Exact())
	if err != nil {
		t.Fatal(err)
	}

	base := AttendRequest{Q: q, K: k, V: v, HeadDim: testDim, Seed: testSeed}
	for _, tc := range []struct {
		backend string
		want    [][]float32
	}{
		{elsa.BackendLinearScan, wantScan.Context},
		{elsa.BackendScores, wantScores.Context},
	} {
		req := base
		req.Backend = tc.backend
		var got AttendResponse
		if code := doJSON(t, client, "POST", ts.URL+"/v1/attend", req, &got); code != http.StatusOK {
			t.Fatalf("backend %q: status %d", tc.backend, code)
		}
		if !sameMatrix(got.Context, tc.want) {
			t.Errorf("backend %q: context differs from direct library call", tc.backend)
		}
	}

	// Unknown backend name: 400, not silent fallback.
	req := base
	req.Backend = "bogus"
	if code := doJSON(t, client, "POST", ts.URL+"/v1/attend", req, nil); code != http.StatusBadRequest {
		t.Errorf("unknown backend: status %d, want 400", code)
	}
	// An exact backend cannot run an approximate operating point.
	req = base
	req.Backend = elsa.BackendLinearScan
	req.P = 1
	if code := doJSON(t, client, "POST", ts.URL+"/v1/attend", req, nil); code != http.StatusBadRequest {
		t.Errorf("backend with p>0: status %d, want 400", code)
	}
}

// TestServerDefaultExactBackend covers -exact-backend: a server-wide
// default applies to exact ops that did not pin a backend, while explicit
// per-request selectors and approximate ops are untouched.
func TestServerDefaultExactBackend(t *testing.T) {
	srv := New(Config{BatchWindow: time.Millisecond, ExactBackend: elsa.BackendLinearScan})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	rng := rand.New(rand.NewSource(62))
	q, k, v := genOp(rng, 3, 20)
	eng := refEngine(t)
	wantScan, err := eng.AttendLinearScan(q, k, v)
	if err != nil {
		t.Fatal(err)
	}
	wantScores, err := eng.Attend(q, k, v, elsa.Exact())
	if err != nil {
		t.Fatal(err)
	}

	// p=0 with no backend: rides the server default (linear scan).
	var got AttendResponse
	req := AttendRequest{Q: q, K: k, V: v, HeadDim: testDim, Seed: testSeed}
	if code := doJSON(t, client, "POST", ts.URL+"/v1/attend", req, &got); code != http.StatusOK {
		t.Fatalf("default backend attend: status %d", code)
	}
	if !sameMatrix(got.Context, wantScan.Context) {
		t.Error("exact op did not ride the server's default linear-scan backend")
	}
	// An explicit per-request selector still wins.
	req.Backend = elsa.BackendScores
	if code := doJSON(t, client, "POST", ts.URL+"/v1/attend", req, &got); code != http.StatusOK {
		t.Fatalf("explicit scores attend: status %d", code)
	}
	if !sameMatrix(got.Context, wantScores.Context) {
		t.Error("explicit scores selector did not override the server default")
	}
	// An approximate op must stay on the filter pipeline regardless of the
	// server default: it still answers 200 without a backend error.
	req.Backend = ""
	req.P = 1
	if code := doJSON(t, client, "POST", ts.URL+"/v1/attend", req, &got); code != http.StatusOK {
		t.Fatalf("approximate op under default backend: status %d", code)
	}
}

// TestSessionBackendDecode pins the session-level selector: a session
// created with backend "linear-scan" answers every decode query
// bit-identically to a directly-driven Stream.QueryLinearScan, and a
// per-query selector overrides a session that did not pin one.
func TestSessionBackendDecode(t *testing.T) {
	srv := New(Config{BatchWindow: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	rng := rand.New(rand.NewSource(63))
	eng := refEngine(t)
	direct := eng.NewStream(64)

	var pinned SessionCreateResponse
	if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions",
		SessionCreateRequest{HeadDim: testDim, Seed: testSeed, Backend: elsa.BackendLinearScan},
		&pinned); code != http.StatusOK {
		t.Fatalf("create pinned session: status %d", code)
	}
	var auto SessionCreateResponse
	if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions",
		SessionCreateRequest{HeadDim: testDim, Seed: testSeed}, &auto); code != http.StatusOK {
		t.Fatalf("create auto session: status %d", code)
	}

	const tokens = 24
	for i := 0; i < tokens; i++ {
		key, value := genVec(rng), genVec(rng)
		if err := direct.Append(key, value); err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{pinned.ID, auto.ID} {
			if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions/"+id+"/append",
				SessionAppendRequest{Key: key, Value: value}, nil); code != http.StatusOK {
				t.Fatalf("append token %d: status %d", i, code)
			}
		}

		qv := genVec(rng)
		want, _, err := direct.QueryLinearScan(nil, qv)
		if err != nil {
			t.Fatal(err)
		}
		// Session-pinned backend: no per-query selector needed.
		var got SessionQueryResponse
		if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions/"+pinned.ID+"/query",
			SessionQueryRequest{Q: qv}, &got); code != http.StatusOK {
			t.Fatalf("pinned query %d: status %d", i, code)
		}
		if !sameMatrix([][]float32{got.Context}, [][]float32{want}) {
			t.Fatalf("token %d: pinned-session context differs from direct QueryLinearScan", i)
		}
		if got.Candidates != i+1 {
			t.Fatalf("token %d: linear scan must attend the whole prefix, candidates %d", i, got.Candidates)
		}
		// Per-query selector on the unpinned session.
		if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions/"+auto.ID+"/query",
			SessionQueryRequest{Q: qv, Backend: elsa.BackendLinearScan}, &got); code != http.StatusOK {
			t.Fatalf("override query %d: status %d", i, code)
		}
		if !sameMatrix([][]float32{got.Context}, [][]float32{want}) {
			t.Fatalf("token %d: per-query override context differs from direct QueryLinearScan", i)
		}
	}

	// backend and t are mutually exclusive on a query.
	tv := 0.5
	if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions/"+auto.ID+"/query",
		SessionQueryRequest{Q: genVec(rng), Backend: elsa.BackendLinearScan, T: &tv}, nil); code != http.StatusBadRequest {
		t.Errorf("backend+t query: status %d, want 400", code)
	}
	// Creating an approximate session with a pinned exact backend is a 400.
	if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions",
		SessionCreateRequest{HeadDim: testDim, Seed: testSeed, P: 1, Backend: elsa.BackendLinearScan},
		nil); code != http.StatusBadRequest {
		t.Errorf("backend with p>0 create: status %d, want 400", code)
	}
	if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions",
		SessionCreateRequest{HeadDim: testDim, Seed: testSeed, Backend: "bogus"},
		nil); code != http.StatusBadRequest {
		t.Errorf("unknown backend create: status %d, want 400", code)
	}
}

// TestSessionStepBackendPerEntry runs a mixed step wave: one entry rides
// its session's pinned linear scan, one selects it per query, and an
// entry combining backend with t fails alone without poisoning the wave.
func TestSessionStepBackendPerEntry(t *testing.T) {
	srv := New(Config{BatchWindow: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	rng := rand.New(rand.NewSource(64))
	eng := refEngine(t)
	direct := eng.NewStream(32)

	var pinned, auto SessionCreateResponse
	if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions",
		SessionCreateRequest{HeadDim: testDim, Seed: testSeed, Backend: elsa.BackendLinearScan},
		&pinned); code != http.StatusOK {
		t.Fatalf("create: status %d", code)
	}
	if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions",
		SessionCreateRequest{HeadDim: testDim, Seed: testSeed}, &auto); code != http.StatusOK {
		t.Fatalf("create: status %d", code)
	}
	for i := 0; i < 12; i++ {
		key, value := genVec(rng), genVec(rng)
		if err := direct.Append(key, value); err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{pinned.ID, auto.ID} {
			if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions/"+id+"/append",
				SessionAppendRequest{Key: key, Value: value}, nil); code != http.StatusOK {
				t.Fatalf("append: status %d", code)
			}
		}
	}

	qv := genVec(rng)
	want, _, err := direct.QueryLinearScan(nil, qv)
	if err != nil {
		t.Fatal(err)
	}
	tv := 0.5
	var wave SessionStepResponse
	if code := doJSON(t, client, "POST", ts.URL+"/v1/sessions/step", SessionStepRequest{
		Queries: []SessionStepQuery{
			{ID: pinned.ID, Q: qv},
			{ID: auto.ID, Q: qv, Backend: elsa.BackendLinearScan},
			{ID: auto.ID, Q: qv, Backend: elsa.BackendLinearScan, T: &tv},
		},
	}, &wave); code != http.StatusOK {
		t.Fatalf("step wave: status %d", code)
	}
	if len(wave.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(wave.Results))
	}
	for i := 0; i < 2; i++ {
		r := wave.Results[i]
		if r.Error != "" {
			t.Fatalf("entry %d failed: %s", i, r.Error)
		}
		if !sameMatrix([][]float32{r.Context}, [][]float32{want}) {
			t.Errorf("entry %d: context differs from direct QueryLinearScan", i)
		}
	}
	if wave.Results[2].Error == "" {
		t.Error("backend+t entry should fail per-entry")
	}
}

// TestMigrationPreservesBackend exports a linear-scan-pinned session from
// one server and imports it into another: the export carries the backend
// and the adopted session keeps answering through the linear scan.
func TestMigrationPreservesBackend(t *testing.T) {
	mkServer := func() (*Server, *httptest.Server) {
		srv := New(Config{BatchWindow: time.Millisecond})
		ts := httptest.NewServer(srv)
		return srv, ts
	}
	srvA, tsA := mkServer()
	defer srvA.Close()
	defer tsA.Close()
	srvB, tsB := mkServer()
	defer srvB.Close()
	defer tsB.Close()
	client := tsA.Client()

	rng := rand.New(rand.NewSource(65))
	eng := refEngine(t)
	direct := eng.NewStream(32)

	var created SessionCreateResponse
	if code := doJSON(t, client, "POST", tsA.URL+"/v1/sessions",
		SessionCreateRequest{HeadDim: testDim, Seed: testSeed, Backend: elsa.BackendLinearScan},
		&created); code != http.StatusOK {
		t.Fatalf("create: status %d", code)
	}
	for i := 0; i < 16; i++ {
		key, value := genVec(rng), genVec(rng)
		if err := direct.Append(key, value); err != nil {
			t.Fatal(err)
		}
		if code := doJSON(t, client, "POST", tsA.URL+"/v1/sessions/"+created.ID+"/append",
			SessionAppendRequest{Key: key, Value: value}, nil); code != http.StatusOK {
			t.Fatalf("append: status %d", code)
		}
	}

	var exported SessionExportResponse
	if code := doJSON(t, client, "POST", tsA.URL+"/v1/sessions/"+created.ID+"/export",
		struct{}{}, &exported); code != http.StatusOK {
		t.Fatalf("export: status %d", code)
	}
	if exported.Backend != elsa.BackendLinearScan {
		t.Fatalf("export backend %q, want %q", exported.Backend, elsa.BackendLinearScan)
	}

	var imported SessionImportResponse
	if code := doJSON(t, client, "POST", tsB.URL+"/v1/sessions/import", SessionImportRequest{
		ID: exported.ID, State: exported.State, Capacity: exported.Capacity,
		HeadDim: exported.HeadDim, HashBits: exported.HashBits,
		Seed: exported.Seed, Quantized: exported.Quantized,
		P: exported.P, Threshold: exported.Threshold, Backend: exported.Backend,
	}, &imported); code != http.StatusOK {
		t.Fatalf("import: status %d", code)
	}
	if imported.Len != exported.Len {
		t.Fatalf("imported len %d, want %d", imported.Len, exported.Len)
	}

	qv := genVec(rng)
	want, _, err := direct.QueryLinearScan(nil, qv)
	if err != nil {
		t.Fatal(err)
	}
	var got SessionQueryResponse
	if code := doJSON(t, client, "POST", tsB.URL+"/v1/sessions/"+created.ID+"/query",
		SessionQueryRequest{Q: qv}, &got); code != http.StatusOK {
		t.Fatalf("post-import query: status %d", code)
	}
	if !sameMatrix([][]float32{got.Context}, [][]float32{want}) {
		t.Error("adopted session lost its linear-scan pin: context differs from direct QueryLinearScan")
	}
}
