package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elsa"
	"elsa/serve/client"
)

// TestEnvelopeAndLegacyPayloadsMatch verifies the v1 envelope and a bare
// pre-envelope payload produce byte-identical responses on a server with
// legacy compat enabled: the envelope is pure metadata around the same
// op. (Without -compat-legacy the bare form is rejected outright; see
// envelope_compat_test.go.)
func TestEnvelopeAndLegacyPayloadsMatch(t *testing.T) {
	srv := New(Config{BatchWindow: time.Millisecond, CompatLegacy: true})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(testSeed))
	q, k, v := genOp(rng, 4, 8)
	req := AttendRequest{Q: q, K: k, V: v, HeadDim: testDim, Seed: testSeed}

	bareBody, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	legacyResp, err := ts.Client().Post(ts.URL+"/v1/attend", "application/json", bytes.NewReader(bareBody))
	if err != nil {
		t.Fatal(err)
	}
	var legacyBuf bytes.Buffer
	if _, err := legacyBuf.ReadFrom(legacyResp.Body); err != nil {
		t.Fatal(err)
	}
	legacyResp.Body.Close()
	legacyBody := legacyBuf.Bytes()
	if legacyResp.StatusCode != http.StatusOK {
		t.Fatalf("legacy payload: %d: %s", legacyResp.StatusCode, legacyBody)
	}

	op, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(Envelope{ClientID: "tester", Priority: "interactive", Op: op})
	if err != nil {
		t.Fatal(err)
	}
	envResp, err := ts.Client().Post(ts.URL+"/v1/attend", "application/json", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	defer envResp.Body.Close()
	var envBody bytes.Buffer
	if _, err := envBody.ReadFrom(envResp.Body); err != nil {
		t.Fatal(err)
	}
	if envResp.StatusCode != http.StatusOK {
		t.Fatalf("enveloped payload: %d: %s", envResp.StatusCode, envBody.String())
	}
	if !bytes.Equal(legacyBody, envBody.Bytes()) {
		t.Errorf("envelope changed the response:\nlegacy: %s\nenvelope: %s", legacyBody, envBody.String())
	}
}

// TestBadPriorityRejected verifies an unknown priority class is a 400,
// not a silent default.
func TestBadPriorityRejected(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := []byte(`{"priority":"urgent","op":{"q":[[1]],"k":[[1]],"v":[[1]]}}`)
	resp, err := ts.Client().Post(ts.URL+"/v1/attend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown priority answered %d, want 400", resp.StatusCode)
	}
}

// TestQuotaFloodIsolatesQuietClient is the synthetic-overload scenario
// from the issue: one client floods well past its token bucket while a
// quiet client trickles requests. The flooder must be throttled (429
// with Retry-After); every quiet-client op must complete with zero quota
// sheds charged to it.
func TestQuotaFloodIsolatesQuietClient(t *testing.T) {
	srv := New(Config{
		BatchWindow: time.Millisecond,
		QuotaRPS:    5,
		QuotaBurst:  8,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(testSeed))
	q, k, v := genOp(rng, 2, 6)
	opts := client.AttendOptions{HeadDim: testDim, Seed: testSeed}

	const floodN, quietN = 60, 5
	var floodOK, floodShed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		flood := client.New(ts.URL, client.WithClientID("flooder"))
		for i := 0; i < floodN; i++ {
			_, err := flood.Attend(context.Background(), q, k, v, opts)
			var apiErr *client.APIError
			switch {
			case err == nil:
				floodOK.Add(1)
			case asAPIError(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests:
				if apiErr.RetryAfter <= 0 {
					t.Errorf("throttled reply carried no Retry-After: %v", apiErr)
				}
				floodShed.Add(1)
			default:
				t.Errorf("flooder request %d: %v", i, err)
			}
		}
	}()

	quiet := client.New(ts.URL, client.WithClientID("quiet"))
	quietStart := time.Now()
	for i := 0; i < quietN; i++ {
		res, err := quiet.Attend(context.Background(), q, k, v, opts)
		if err != nil {
			t.Fatalf("quiet client op %d was not isolated from the flood: %v", i, err)
		}
		if len(res.Context) != len(q) {
			t.Fatalf("quiet op %d: got %d context rows, want %d", i, len(res.Context), len(q))
		}
	}
	quietWait := time.Since(quietStart)
	wg.Wait()

	if floodShed.Load() == 0 {
		t.Errorf("flooder sent %d ops against burst 8 and was never throttled (ok=%d)",
			floodN, floodOK.Load())
	}
	if floodOK.Load() == 0 {
		t.Error("flooder should still get its burst through, got zero successes")
	}
	// The quiet client's five ops fit entirely inside its own burst: any
	// shed charged to it would have surfaced as a 429 above; its queue
	// wait must stay bounded (well under the request timeout) while the
	// flood is on.
	if quietWait > 10*time.Second {
		t.Errorf("quiet client waited %v for %d ops", quietWait, quietN)
	}
	dec := srv.Metrics().AdmissionDecisions()
	if dec["shed_quota"] != floodShed.Load() {
		t.Errorf("shed_quota metric = %d, want %d (only the flooder's sheds)",
			dec["shed_quota"], floodShed.Load())
	}
	if dec["admitted"] == 0 {
		t.Error("no ops recorded as admitted")
	}
}

// asAPIError adapts errors.As to a test-side helper.
func asAPIError(err error, target **client.APIError) bool {
	if e, ok := err.(*client.APIError); ok {
		*target = e
		return true
	}
	return false
}

// TestDeadlineShedSkipsQueueWait verifies deadline-aware shedding: an op
// whose deadline_ms cannot cover the batching window is refused
// immediately with Retry-After instead of sitting in queue until it
// times out.
func TestDeadlineShedSkipsQueueWait(t *testing.T) {
	const window = 400 * time.Millisecond
	srv := New(Config{BatchWindow: window})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(testSeed))
	q, k, v := genOp(rng, 2, 6)
	op, err := json.Marshal(AttendRequest{Q: q, K: k, V: v, HeadDim: testDim, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(Envelope{ClientID: "hurried", DeadlineMS: 20, Op: op})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/v1/attend", "application/json", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)

	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("unmeetable deadline answered %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("deadline shed carried no Retry-After header")
	}
	// The whole point: the op must be refused up front, not after paying
	// the 400ms batching window (or its own 20ms timeout as a 504).
	if elapsed > window/2 {
		t.Errorf("deadline shed took %v; it should not pay the %v queue wait", elapsed, window)
	}
	if dec := srv.Metrics().AdmissionDecisions(); dec["shed_deadline"] != 1 {
		t.Errorf("shed_deadline metric = %d, want 1", dec["shed_deadline"])
	}
}

// TestWeightedDequeueDefersBackground drives the dispatcher directly:
// with maxBatch 4 and default 16:4:1 weights, a full batch of 3
// background + 1 interactive ops must dispatch the interactive op at
// once with only background's weight share (1 op) alongside, deferring
// the other background ops to the next window — progress for both, no
// displacement of the interactive op.
func TestWeightedDequeueDefersBackground(t *testing.T) {
	p, d, m := newTestStack(t, 1, 4, time.Second, 4, 64)
	set, err := p.get(normalizeOptions(elsa.Options{HeadDim: testDim, Seed: testSeed}, testDim))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(testSeed))
	q, k, v := genOp(rng, 2, 6)

	var wg sync.WaitGroup
	bgBatch := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, size, _, err := d.submit(context.Background(), set, elsa.BatchOp{Q: q, K: k, V: v}, elsa.Exact(), ClassBackground, time.Time{})
			if err != nil {
				t.Errorf("background op %d: %v", i, err)
			}
			bgBatch[i] = size
		}(i)
	}
	// Wait for all three background ops to be resident in the pending
	// batch before the interactive op arrives and fills it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.mu.Lock()
		n := d.queued
		d.mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background ops never queued: %d resident", n)
		}
		time.Sleep(time.Millisecond)
	}

	_, size, _, err := d.submit(context.Background(), set, elsa.BatchOp{Q: q, K: k, V: v}, elsa.Exact(), ClassInteractive, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// The interactive op's dispatch carried itself plus background's cap
	// of max(1, 4*1/21) = 1 op.
	if size != 2 {
		t.Errorf("interactive op dispatched in a batch of %d, want 2 (self + capped background)", size)
	}
	if got := m.Preemptions()["background"]; got != 2 {
		t.Errorf("preempted{background} = %d, want 2", got)
	}
	// Every background op shares a batch of 2: one rode along with the
	// interactive op, the two deferred ones dispatch together when the
	// next window fires.
	for i, size := range bgBatch {
		if size != 2 {
			t.Errorf("background op %d dispatched in a batch of %d, want 2 (sizes %v)", i, size, bgBatch)
		}
	}
}

// TestSessionsInheritCreatorQuota verifies decode-session traffic is
// charged to the client that created the session, even when the
// follow-up requests carry no client_id themselves.
func TestSessionsInheritCreatorQuota(t *testing.T) {
	srv := New(Config{
		QuotaRPS:     0.001, // effectively no refill within the test
		QuotaBurst:   3,
		CompatLegacy: true, // the bare appends below are the legacy path under test
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	create, err := json.Marshal(Envelope{
		ClientID: "owner",
		Op:       json.RawMessage(fmt.Sprintf(`{"head_dim":%d,"seed":%d}`, testDim, testSeed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(create))
	if err != nil {
		t.Fatal(err)
	}
	var created SessionCreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d", resp.StatusCode)
	}

	key := make([]float32, testDim)
	key[0] = 1
	appendBody, err := json.Marshal(SessionAppendRequest{Key: key, Value: key})
	if err != nil {
		t.Fatal(err)
	}
	// Burst 3: create consumed 1, so two bare appends pass and the third
	// must be shed against the creator's bucket.
	codes := make([]int, 3)
	for i := range codes {
		resp, err := ts.Client().Post(ts.URL+"/v1/sessions/"+created.ID+"/append",
			"application/json", bytes.NewReader(appendBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes[i] = resp.StatusCode
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Error("session quota shed carried no Retry-After")
		}
	}
	want := []int{http.StatusOK, http.StatusOK, http.StatusTooManyRequests}
	for i := range codes {
		if codes[i] != want[i] {
			t.Fatalf("append status codes = %v, want %v", codes, want)
		}
	}
}

// TestQuotaBucketMath unit-tests the token bucket with an injected
// clock.
func TestQuotaBucketMath(t *testing.T) {
	q := newQuotas(2, 2)
	now := time.Unix(0, 0)
	q.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if admitted, _ := q.take("c"); !admitted {
			t.Fatalf("burst op %d refused", i)
		}
	}
	admitted, wait := q.take("c")
	if admitted {
		t.Fatal("op beyond burst admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("refusal wait = %v, want (0, 1s] at 2 rps", wait)
	}
	now = now.Add(500 * time.Millisecond) // one token refilled
	if admitted, _ = q.take("c"); !admitted {
		t.Fatal("op after refill refused")
	}
	if admitted, _ = q.take("c"); admitted {
		t.Fatal("second op after single-token refill admitted")
	}
	if newQuotas(0, 10) != nil {
		t.Fatal("rps 0 should disable quotas")
	}
	var disabled *quotas
	if admitted, _ := disabled.take("x"); !admitted {
		t.Fatal("nil quotas must admit everything")
	}
}
