package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"elsa"
)

// Errors surfaced by the dispatcher to the HTTP layer.
var (
	// ErrQueueFull means the bounded dispatcher queue is at capacity; the
	// caller should shed load (HTTP 429).
	ErrQueueFull = errors.New("serve: dispatcher queue full")
	// ErrClosed means the server is draining for shutdown (HTTP 503).
	ErrClosed = errors.New("serve: server shutting down")
)

// jobResult is what a dispatched job hands back to its waiting request.
type jobResult struct {
	out       *elsa.Output
	batchSize int
	shard     int
	err       error
}

// job is one queued attention op plus its completion channel. The op
// carries its own per-op threshold (BatchOp.Thr), which is what lets ops
// calibrated at different operating points share a dispatch.
type job struct {
	ctx    context.Context
	op     elsa.BatchOp
	result chan jobResult // buffered: dispatch never blocks on a gone requester
}

// pendingBatch accumulates jobs for one replica set until the window
// elapses or the batch fills.
type pendingBatch struct {
	jobs []*job
}

// shard is one engine replica's dispatch lane: a bounded queue of
// detached micro-batches executed serially by the shard loop, mirroring
// one accelerator unit consuming its own work queue. depth counts batches
// enqueued but not yet started.
type shard struct {
	id    int // replica index within its set
	eng   *elsa.Engine
	queue chan *pendingBatch
	depth atomic.Int64
}

// newShard sizes the queue to the global op bound: the dispatcher admits
// at most maxQueue ops, every batch holds at least one op, and ops stay
// counted until their batch starts running, so a send can never block.
func newShard(id int, eng *elsa.Engine, maxQueue int) *shard {
	return &shard{id: id, eng: eng, queue: make(chan *pendingBatch, maxQueue)}
}

// dispatcher implements dynamic micro-batching over replicated engines:
// the first request for a replica set opens a batching window; requests
// arriving within it — whatever their thresholds — coalesce into one
// batch, which is then routed to the least-loaded shard of the set and
// executed through AttendBatchContext with per-op thresholds.
type dispatcher struct {
	window   time.Duration
	maxBatch int
	maxQueue int
	workers  int
	metrics  *Metrics

	mu      sync.Mutex
	closed  bool
	queued  int
	pending map[*replicaSet]*pendingBatch
	batchWg sync.WaitGroup // in-flight dispatched batches
	loopWg  sync.WaitGroup // running shard loops
}

func newDispatcher(window time.Duration, maxBatch, maxQueue, workers int, m *Metrics) *dispatcher {
	return &dispatcher{
		window:   window,
		maxBatch: maxBatch,
		maxQueue: maxQueue,
		workers:  workers,
		metrics:  m,
		pending:  make(map[*replicaSet]*pendingBatch),
	}
}

// startShard runs a shard loop: it executes the shard's batches serially
// until the pool closes the queue at shutdown.
func (d *dispatcher) startShard(sh *shard) {
	d.loopWg.Add(1)
	go func() {
		defer d.loopWg.Done()
		for b := range sh.queue {
			d.runBatch(sh, b)
		}
	}()
}

// submit enqueues one op with its operating point and blocks until its
// batch is dispatched and computed, ctx is done, or the server refuses it
// (full queue / closing). It returns the op's output, how many ops shared
// the dispatched batch, and which shard ran it.
func (d *dispatcher) submit(ctx context.Context, set *replicaSet, op elsa.BatchOp, thr elsa.Threshold) (*elsa.Output, int, int, error) {
	op.Thr = &thr
	j := &job{ctx: ctx, op: op, result: make(chan jobResult, 1)}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, 0, 0, ErrClosed
	}
	if d.queued >= d.maxQueue {
		d.mu.Unlock()
		return nil, 0, 0, ErrQueueFull
	}
	d.queued++
	d.metrics.SetQueueDepth(d.queued)
	b, ok := d.pending[set]
	if !ok {
		b = &pendingBatch{}
		d.pending[set] = b
		// First job for this set: open the batching window. The timer
		// flushes whatever has accumulated when it fires; pointer
		// identity guards against flushing a successor batch.
		time.AfterFunc(d.window, func() { d.flush(set, b) })
	}
	b.jobs = append(b.jobs, j)
	if len(b.jobs) >= d.maxBatch {
		d.dispatchLocked(set, b)
	}
	d.mu.Unlock()

	select {
	case r := <-j.result:
		return r.out, r.batchSize, r.shard, r.err
	case <-ctx.Done():
		return nil, 0, 0, ctx.Err()
	}
}

// flush dispatches batch b if it is still the pending batch for set.
func (d *dispatcher) flush(set *replicaSet, b *pendingBatch) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pending[set] == b {
		d.dispatchLocked(set, b)
	}
}

// dispatchLocked detaches b from the pending set and routes it to the
// least-loaded shard of the replica set. Callers hold d.mu; the send
// cannot block (see newShard) so holding the lock across it is safe. The
// batchWg.Add here pairs with close()'s batchWg.Wait so shutdown drains
// every dispatched batch.
func (d *dispatcher) dispatchLocked(set *replicaSet, b *pendingBatch) {
	delete(d.pending, set)
	d.batchWg.Add(1)
	sh := set.pickShard()
	sh.depth.Add(1)
	d.metrics.AddShardDepth(sh.id, 1)
	sh.queue <- b
}

// runBatch executes one detached batch on its shard: jobs whose context
// already expired are answered immediately, the rest go through the
// shard engine's batch worker pool in one call, each op at its own
// threshold.
func (d *dispatcher) runBatch(sh *shard, b *pendingBatch) {
	defer d.batchWg.Done()
	sh.depth.Add(-1)
	d.metrics.AddShardDepth(sh.id, -1)
	jobs := b.jobs
	live := make([]*job, 0, len(jobs))
	for _, j := range jobs {
		if err := j.ctx.Err(); err != nil {
			j.result <- jobResult{err: err}
			continue
		}
		live = append(live, j)
	}
	d.mu.Lock()
	d.queued -= len(jobs)
	d.metrics.SetQueueDepth(d.queued)
	d.mu.Unlock()
	if len(live) == 0 {
		return
	}
	ops := make([]elsa.BatchOp, len(live))
	for i, j := range live {
		ops[i] = j.op
	}
	d.metrics.ObserveBatch(len(live))
	d.metrics.ObserveShardBatch(sh.id, len(live))
	// Each batch op runs elsa.Attend's pooled-workspace fast path: no
	// per-query allocations and no candidate-list collection (the serving
	// API only reports counts), so concurrent batches reuse warm buffers
	// from the engine's sync.Pool instead of churning the allocator. The
	// shared threshold argument is irrelevant: every op carries its own.
	outs, err := sh.eng.AttendBatchContext(context.Background(), ops, elsa.Exact(), d.workers)
	if err != nil {
		for _, j := range live {
			j.result <- jobResult{err: err}
		}
		return
	}
	for i, j := range live {
		d.metrics.ObserveCandidateFraction(outs[i].CandidateFraction)
		j.result <- jobResult{out: outs[i], batchSize: len(live), shard: sh.id}
	}
}

// close stops admission, dispatches every still-pending batch
// immediately, and waits for all in-flight batches to finish. Safe to
// call more than once. The shard loops themselves are shut down by the
// pool (closeShards) once no batch can be enqueued again; waitShards then
// joins them.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	for set, b := range d.pending {
		d.dispatchLocked(set, b)
	}
	d.mu.Unlock()
	d.batchWg.Wait()
}

// waitShards blocks until every shard loop has exited. Call after
// closeShards.
func (d *dispatcher) waitShards() {
	d.loopWg.Wait()
}
