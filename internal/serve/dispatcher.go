package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"elsa"
)

// Errors surfaced by the dispatcher to the HTTP layer.
var (
	// ErrQueueFull means the submitting class's share of the bounded
	// dispatcher queue is at capacity; the caller should shed load
	// (HTTP 429).
	ErrQueueFull = errors.New("serve: dispatcher queue full")
	// ErrClosed means the server is draining for shutdown (HTTP 503).
	ErrClosed = errors.New("serve: server shutting down")
	// ErrDeadline means the op's remaining deadline cannot cover the
	// estimated queue wait, so it is shed immediately (HTTP 429 with
	// Retry-After) instead of timing out in queue.
	ErrDeadline = errors.New("serve: deadline cannot cover estimated queue wait")
	// ErrNoWorkers means no shard of the target replica set is available
	// — every remote worker is ejected and the frontend holds no local
	// replicas (HTTP 503 with Retry-After, so clients back off until a
	// probe re-admits a worker).
	ErrNoWorkers = errors.New("serve: no available workers")
)

// shedError wraps a shed sentinel with the Retry-After the HTTP layer
// should surface.
type shedError struct {
	sentinel   error
	retryAfter time.Duration
}

func (e *shedError) Error() string { return e.sentinel.Error() }
func (e *shedError) Unwrap() error { return e.sentinel }

// retryAfterOf extracts a shed error's Retry-After hint (0 when absent).
func retryAfterOf(err error) time.Duration {
	var se *shedError
	if errors.As(err, &se) {
		return se.retryAfter
	}
	return 0
}

// jobResult is what a dispatched job hands back to its waiting request.
type jobResult struct {
	out       *elsa.Output
	batchSize int
	shard     int
	err       error
}

// job is one queued attention op plus its completion channel. The op
// carries its own per-op threshold (BatchOp.Thr), which is what lets ops
// calibrated at different operating points share a dispatch. attempts
// counts reroutes after retryable worker failures; only the executing
// goroutine touches it. A job with dec set is one session's decode step
// riding the continuous decode loop instead of a windowed pending batch;
// batches never mix the two kinds (a decode batch is assembled by
// takeBatch, a one-shot batch by dispatchLocked).
type job struct {
	ctx      context.Context
	op       elsa.BatchOp
	dec      *decodeJob
	class    Class
	attempts int
	result   chan jobResult // buffered: dispatch never blocks on a gone requester
}

// pendingBatch accumulates jobs for one replica set until the window
// elapses or the batch fills, bucketed by priority class so dispatch can
// dequeue by weight.
type pendingBatch struct {
	jobs  [NumClasses][]*job
	count int
	due   time.Time // when this batch's window timer fires
}

// shard is one dispatch lane of a replica set: a bounded queue of
// detached micro-batches executed serially by the shard loop against its
// backend — an in-process engine replica or a remote worker — mirroring
// one accelerator unit consuming its own work queue. depth counts batches
// enqueued but not yet started. set points back at the owning replica
// set so a failed batch can reroute to a sibling shard.
type shard struct {
	id      int // lane index within its set
	set     *replicaSet
	backend shardBackend
	queue   chan []*job
	depth   atomic.Int64
}

// newShard sizes the queue to the global op bound: the dispatcher admits
// at most maxQueue ops, every batch holds at least one op, and ops stay
// counted until their batch starts running, so a send can never block.
func newShard(id int, set *replicaSet, backend shardBackend, maxQueue int) *shard {
	return &shard{id: id, set: set, backend: backend, queue: make(chan []*job, maxQueue)}
}

// dispatcher implements dynamic micro-batching over replicated engines:
// the first request for a replica set opens a batching window; requests
// arriving within it — whatever their thresholds or classes — coalesce
// into one pending batch. Dispatch dequeues by priority weight (the
// highest waiting class fills freely, lower classes are capped to their
// weight share and deferred ops stay pending), then routes the batch to
// the least-loaded shard of the set and executes it through
// AttendBatchContext with per-op thresholds.
type dispatcher struct {
	window        time.Duration
	maxBatch      int
	maxQueue      int
	workers       int
	retries       int           // reroute attempts per op after retryable worker failures
	noWorkerRetry time.Duration // Retry-After hint when no shard is available
	weights       classWeights
	metrics       *Metrics

	mu       sync.Mutex
	closed   bool
	queued   int
	queuedBy [NumClasses]int // queue occupancy per class, summing to queued
	svcEWMA  float64         // smoothed batch service time, seconds
	pending  map[*replicaSet]*pendingBatch
	batchWg  sync.WaitGroup // in-flight dispatched batches
	loopWg   sync.WaitGroup // running shard loops

	decStates []*decodeState // one continuous decode loop per replica set
	decWg     sync.WaitGroup // running decode loops
}

func newDispatcher(window time.Duration, maxBatch, maxQueue, workers, retries int, noWorkerRetry time.Duration, weights classWeights, m *Metrics) *dispatcher {
	return &dispatcher{
		window:        window,
		maxBatch:      maxBatch,
		maxQueue:      maxQueue,
		workers:       workers,
		retries:       retries,
		noWorkerRetry: noWorkerRetry,
		weights:       weights.normalize(),
		metrics:       m,
		pending:       make(map[*replicaSet]*pendingBatch),
	}
}

// noteQueuedLocked pushes the total and per-class queue gauges after any
// change to d.queued / d.queuedBy. Callers hold d.mu.
func (d *dispatcher) noteQueuedLocked() {
	d.metrics.SetQueueDepth(d.queued)
	d.metrics.SetClassQueueDepths(d.queuedBy)
}

// dequeueLocked removes jobs from the queue accounting (their batch is
// running, or they are being failed). Callers hold d.mu.
func (d *dispatcher) dequeueLocked(jobs []*job) {
	d.queued -= len(jobs)
	for _, j := range jobs {
		d.queuedBy[j.class]--
	}
	d.noteQueuedLocked()
}

// startShard runs a shard loop: it executes the shard's batches serially
// until the pool closes the queue at shutdown.
func (d *dispatcher) startShard(sh *shard) {
	d.loopWg.Add(1)
	go func() {
		defer d.loopWg.Done()
		for b := range sh.queue {
			d.runBatch(sh, b)
		}
	}()
}

// estimateWaitLocked predicts how long a newly submitted op for set
// waits before its result exists: the remaining batching window, plus
// the least-loaded shard's queued batches at the smoothed batch service
// time, plus one service time for the op's own batch. Callers hold d.mu.
func (d *dispatcher) estimateWaitLocked(set *replicaSet) time.Duration {
	wait := d.window
	if b, ok := d.pending[set]; ok {
		wait = time.Until(b.due)
		if wait < 0 {
			wait = 0
		}
	}
	svc := time.Duration(d.svcEWMA * float64(time.Second))
	minDepth := int64(math.MaxInt64)
	for _, sh := range set.shards() {
		if !sh.backend.available() {
			continue
		}
		if depth := sh.depth.Load(); depth < minDepth {
			minDepth = depth
		}
	}
	if minDepth != math.MaxInt64 {
		wait += time.Duration(minDepth) * svc
	}
	return wait + svc
}

// submit enqueues one op with its operating point, class and absolute
// deadline (zero = none) and blocks until its batch is dispatched and
// computed, ctx is done, or the server refuses it (class queue share
// full / deadline unmeetable / closing). It returns the op's output, how
// many ops shared the dispatched batch, and which shard ran it.
func (d *dispatcher) submit(ctx context.Context, set *replicaSet, op elsa.BatchOp, thr elsa.Threshold, class Class, deadline time.Time) (*elsa.Output, int, int, error) {
	op.Thr = &thr
	j := &job{ctx: ctx, op: op, class: class, result: make(chan jobResult, 1)}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, 0, 0, ErrClosed
	}
	if !set.available() {
		// The whole fleet for this configuration is ejected: fail fast
		// with a Retry-After covering one probe cycle rather than queueing
		// work nothing can run.
		d.mu.Unlock()
		d.metrics.ObserveClassShed(class)
		return nil, 0, 0, &shedError{sentinel: ErrNoWorkers, retryAfter: d.noWorkerRetry}
	}
	if d.queued >= d.weights.queueCap(class, d.maxQueue) {
		est := d.estimateWaitLocked(set)
		d.mu.Unlock()
		d.metrics.ObserveClassShed(class)
		return nil, 0, 0, &shedError{sentinel: ErrQueueFull, retryAfter: est}
	}
	if !deadline.IsZero() {
		if est := d.estimateWaitLocked(set); time.Until(deadline) < est {
			d.mu.Unlock()
			d.metrics.ObserveClassShed(class)
			return nil, 0, 0, &shedError{sentinel: ErrDeadline, retryAfter: est}
		}
	}
	d.queued++
	d.queuedBy[class]++
	d.noteQueuedLocked()
	b, ok := d.pending[set]
	if !ok {
		b = d.newPendingLocked(set)
	}
	b.jobs[class] = append(b.jobs[class], j)
	b.count++
	if b.count >= d.maxBatch {
		d.dispatchLocked(set, b, false)
	}
	d.mu.Unlock()

	select {
	case r := <-j.result:
		return r.out, r.batchSize, r.shard, r.err
	case <-ctx.Done():
		return nil, 0, 0, ctx.Err()
	}
}

// newPendingLocked opens a fresh batching window for set: the timer
// flushes whatever has accumulated when it fires; pointer identity
// guards against flushing a successor batch. Callers hold d.mu.
func (d *dispatcher) newPendingLocked(set *replicaSet) *pendingBatch {
	b := &pendingBatch{due: time.Now().Add(d.window)}
	d.pending[set] = b
	time.AfterFunc(d.window, func() { d.flush(set, b) })
	return b
}

// flush dispatches batch b if it is still the pending batch for set.
func (d *dispatcher) flush(set *replicaSet, b *pendingBatch) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pending[set] == b {
		d.dispatchLocked(set, b, false)
	}
}

// dispatchLocked dequeues up to maxBatch jobs from b by priority weight
// and routes them to the least-loaded shard of the replica set. The
// highest class with waiting jobs fills freely; each lower class is
// capped at its weight share of the batch, and capped-out jobs stay
// pending for the next window (counted as priority-preempted) — so
// background work progresses every dispatch but never displaces
// interactive ops. With drain set every job goes at once (shutdown).
// Callers hold d.mu; the send cannot block (see newShard) so holding the
// lock across it is safe. The batchWg.Add pairs with close()'s
// batchWg.Wait so shutdown drains every dispatched batch.
func (d *dispatcher) dispatchLocked(set *replicaSet, b *pendingBatch, drain bool) {
	capacity := d.maxBatch
	if drain {
		capacity = b.count
	}
	take := make([]*job, 0, min(b.count, capacity))
	leading := true
	for c := Class(0); c < NumClasses; c++ {
		jobs := b.jobs[c]
		if len(jobs) == 0 {
			continue
		}
		room := capacity - len(take)
		if room <= 0 {
			break
		}
		n := len(jobs)
		if !drain && !leading {
			n = min(n, d.weights.dispatchCap(c, d.maxBatch))
		}
		n = min(n, room)
		take = append(take, jobs[:n]...)
		b.jobs[c] = jobs[n:]
		b.count -= n
		leading = false
	}

	if b.count > 0 {
		// Deferred jobs open the next window immediately so they are
		// never stranded; the old batch's timer is disarmed by pointer
		// identity.
		nb := d.newPendingLocked(set)
		nb.jobs = b.jobs
		nb.count = b.count
		for c := Class(0); c < NumClasses; c++ {
			if n := len(nb.jobs[c]); n > 0 {
				d.metrics.ObservePreempted(c.String(), n)
			}
		}
	} else {
		delete(d.pending, set)
	}
	if len(take) == 0 {
		return
	}
	sh := set.pickShard()
	if sh == nil {
		// Every shard went unavailable after these ops were admitted.
		// Fail them here rather than parking them on a dead lane; they
		// leave the queue accounting now.
		d.dequeueLocked(take)
		for _, j := range take {
			d.metrics.ObserveClassShed(j.class)
			j.result <- jobResult{err: &shedError{sentinel: ErrNoWorkers, retryAfter: d.noWorkerRetry}}
		}
		return
	}
	d.batchWg.Add(1)
	sh.depth.Add(1)
	d.metrics.AddShardDepth(sh.id, 1)
	sh.queue <- take
}

// runBatch executes one detached batch on its shard: jobs whose context
// already expired are answered immediately, the rest go through the
// shard's backend in one call, each op at its own threshold. Decode
// batches (assembled by the continuous decode loop) take their own path
// — same queue, same depth accounting, different execution.
func (d *dispatcher) runBatch(sh *shard, jobs []*job) {
	if len(jobs) > 0 && jobs[0].dec != nil {
		d.runDecodeBatch(sh, jobs)
		return
	}
	defer d.batchWg.Done()
	sh.depth.Add(-1)
	d.metrics.AddShardDepth(sh.id, -1)
	live := make([]*job, 0, len(jobs))
	for _, j := range jobs {
		if err := j.ctx.Err(); err != nil {
			j.result <- jobResult{err: err}
			continue
		}
		live = append(live, j)
	}
	d.mu.Lock()
	d.dequeueLocked(jobs)
	d.mu.Unlock()
	if len(live) == 0 {
		return
	}
	d.metrics.ObserveBatch(len(live))
	d.execute(sh, live)
}

// execute runs jobs through sh's backend and delivers results. Ops that
// failed with a retryable worker error (transport fault, worker 5xx or
// overload) and still have reroute budget are handed to reroute; all
// other errors surface to their requesters. Attend ops are idempotent —
// pinned thresholds, no server-side state — so re-executing one on a
// sibling shard after a partial failure yields the bit-identical output
// the first shard would have produced.
func (d *dispatcher) execute(sh *shard, jobs []*job) {
	d.metrics.ObserveShardBatch(sh.id, len(jobs))
	start := time.Now()
	outs, errs := sh.backend.attendBatch(jobs)
	d.observeService(time.Since(start))
	var failed []*job
	for i, j := range jobs {
		err := errs[i]
		if err == nil {
			d.metrics.ObserveCandidateFraction(outs[i].CandidateFraction)
			j.result <- jobResult{out: outs[i], batchSize: len(jobs), shard: sh.id}
			continue
		}
		var we *workerError
		if errors.As(err, &we) && we.retryable {
			if j.attempts < d.retries {
				j.attempts++
				failed = append(failed, j)
				continue
			}
			// Reroute budget exhausted on infrastructure failures: the op
			// itself is fine, the fleet is not. Shed with backoff (503)
			// rather than blaming the request (500).
			j.result <- jobResult{err: &shedError{sentinel: ErrNoWorkers, retryAfter: d.noWorkerRetry}}
			continue
		}
		j.result <- jobResult{err: err}
	}
	if len(failed) > 0 {
		d.reroute(sh, failed)
	}
}

// reroute re-executes jobs that failed on one shard against a sibling of
// the same replica set, synchronously on the calling goroutine: routing
// through the sibling's queue could deadlock when queues are full of
// batches waiting on each other, and the jobs have already left the
// dispatcher's queue accounting. Recursion through execute is bounded by
// each job's attempts budget. With no sibling available the ops fail as
// ErrNoWorkers with a probe-interval Retry-After.
func (d *dispatcher) reroute(from *shard, jobs []*job) {
	d.metrics.ObserveReroutes(len(jobs))
	next := from.set.pickShardExcluding(from)
	if next == nil {
		for _, j := range jobs {
			j.result <- jobResult{err: &shedError{sentinel: ErrNoWorkers, retryAfter: d.noWorkerRetry}}
		}
		return
	}
	d.execute(next, jobs)
}

// observeService folds one batch's wall time into the smoothed service
// time that deadline shedding estimates queue wait with.
func (d *dispatcher) observeService(dur time.Duration) {
	s := dur.Seconds()
	d.mu.Lock()
	if d.svcEWMA == 0 {
		d.svcEWMA = s
	} else {
		d.svcEWMA = 0.8*d.svcEWMA + 0.2*s
	}
	d.mu.Unlock()
}

// close stops admission, dispatches every still-pending batch
// immediately, drains and joins the continuous decode loops, and waits
// for all in-flight batches to finish. Safe to call more than once. The
// shard loops themselves are shut down by the pool (closeShards) once no
// batch can be enqueued again; waitShards then joins them.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	for set, b := range d.pending {
		d.dispatchLocked(set, b, true)
	}
	d.mu.Unlock()
	// Decode loops drain before batchWg.Wait: their final pump still
	// dispatches through the (open) shard queues and adds to batchWg.
	d.closeDecodeLoops()
	d.batchWg.Wait()
}

// waitShards blocks until every shard loop has exited. Call after
// closeShards.
func (d *dispatcher) waitShards() {
	d.loopWg.Wait()
}
