package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"elsa"
)

// thresholdFiles lists the threshold entries currently in dir.
func thresholdFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "threshold-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestThresholdRegistryEvictsBeyondCap pins the state dir's LRU: saving
// past maxFiles removes the oldest threshold files (by mtime), counts
// each eviction, and never touches non-threshold state (spilled session
// files share the dir).
func TestThresholdRegistryEvictsBeyondCap(t *testing.T) {
	dir := t.TempDir()
	// A bystander session-state file must survive every eviction pass.
	bystander := filepath.Join(dir, "session-deadbeef.state")
	if err := os.WriteFile(bystander, []byte("not a threshold"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewMetrics()
	r := newThresholdRegistry(dir, 2, m)
	const p = 0.3
	for i := 0; i < 4; i++ {
		opts := normalizeOptions(elsa.Options{HeadDim: 16 + 16*i, Seed: 5}, 16+16*i)
		thr := elsa.Threshold{P: p, T: float64(i), Queries: 8}
		if _, err := r.get(opts, p, func() (elsa.Threshold, error) { return thr, nil }); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		// Distinct mtimes make the LRU order deterministic even on
		// coarse-grained filesystems.
		past := time.Now().Add(time.Duration(i-10) * time.Second)
		if err := os.Chtimes(r.path(thrKey{opts: opts, p: p}), past, past); err != nil {
			t.Fatal(err)
		}
	}
	// The 4th save ran enforceCap before the backdated mtime landed, so
	// run one more pass the way the next save would.
	r.enforceCap()

	files := thresholdFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("state dir holds %d threshold files, want cap of 2: %v", len(files), files)
	}
	if m.ThresholdEvictions() == 0 {
		t.Error("eviction counter never moved")
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Errorf("eviction pass removed a non-threshold state file: %v", err)
	}

	// The survivors are the most recently used operating points: the two
	// newest mtimes (i = 2 and 3).
	for _, i := range []int{2, 3} {
		opts := normalizeOptions(elsa.Options{HeadDim: 16 + 16*i, Seed: 5}, 16+16*i)
		want := r.path(thrKey{opts: opts, p: p})
		found := false
		for _, f := range files {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("recently used threshold %d missing after eviction: %v", i, fmt.Sprint(files))
		}
	}

	// An unbounded registry (maxFiles 0) never evicts.
	dir2 := t.TempDir()
	r2 := newThresholdRegistry(dir2, 0, m)
	for i := 0; i < 4; i++ {
		opts := normalizeOptions(elsa.Options{HeadDim: 16 + 16*i, Seed: 6}, 16+16*i)
		thr := elsa.Threshold{P: p, T: float64(i), Queries: 8}
		if _, err := r2.get(opts, p, func() (elsa.Threshold, error) { return thr, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := thresholdFiles(t, dir2); len(got) != 4 {
		t.Fatalf("unbounded registry holds %d files, want 4", len(got))
	}
}
