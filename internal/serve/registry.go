package serve

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"elsa"
)

// thrKey identifies one calibrated operating point: a resolved engine
// configuration at a degree of approximation. Keyed by value (Options is
// comparable), so the registry outlives pool evictions of the engines
// themselves.
type thrKey struct {
	opts elsa.Options
	p    float64
}

// thrEntry is one registry slot; ready is closed once thr/err are set so
// concurrent first requests share a single calibration.
type thrEntry struct {
	ready chan struct{}
	thr   elsa.Threshold
	err   error
}

// thresholdRegistry is the per-(engine options, p) threshold cache behind
// the serving layer. With a state directory it is persistent: calibrated
// thresholds are written via elsa.SaveThreshold and a restarted server
// loads them back (elsa.LoadThreshold) instead of re-running Calibrate on
// its first request — the paper's calibrate-offline, serve-online split.
type thresholdRegistry struct {
	dir      string // "" = in-memory only
	maxFiles int    // on-disk threshold file cap; 0 = unbounded
	metrics  *Metrics

	mu      sync.Mutex
	entries map[thrKey]*thrEntry
}

func newThresholdRegistry(dir string, maxFiles int, m *Metrics) *thresholdRegistry {
	if dir != "" {
		// Best effort: a failed mkdir degrades to in-process caching with
		// failed (ignored) saves; serving itself is unaffected.
		os.MkdirAll(dir, 0o755) //nolint:errcheck
	}
	return &thresholdRegistry{dir: dir, maxFiles: maxFiles, metrics: m, entries: make(map[thrKey]*thrEntry)}
}

// get resolves the threshold for (opts, p) in order: memory, state-dir
// file, fresh calibration via calib (invoked at most once per key across
// concurrent requesters). p = 0 is always the exact operating point. A
// failed calibration is not cached: the next request retries.
func (r *thresholdRegistry) get(opts elsa.Options, p float64, calib func() (elsa.Threshold, error)) (elsa.Threshold, error) {
	if p == 0 {
		return elsa.Exact(), nil
	}
	key := thrKey{opts: opts, p: p}
	r.mu.Lock()
	e, ok := r.entries[key]
	if ok {
		r.mu.Unlock()
		<-e.ready
		return e.thr, e.err
	}
	e = &thrEntry{ready: make(chan struct{})}
	r.entries[key] = e
	r.mu.Unlock()

	e.thr, e.err = r.resolve(key, calib)
	if e.err != nil {
		r.mu.Lock()
		if cur, ok := r.entries[key]; ok && cur == e {
			delete(r.entries, key)
		}
		r.mu.Unlock()
	}
	close(e.ready)
	return e.thr, e.err
}

// lookup reports the threshold for (opts, p) if it is already resolvable
// without calibrating: cached in memory or persisted in the state dir.
func (r *thresholdRegistry) lookup(opts elsa.Options, p float64) (elsa.Threshold, bool) {
	if p == 0 {
		return elsa.Exact(), true
	}
	key := thrKey{opts: opts, p: p}
	r.mu.Lock()
	e, ok := r.entries[key]
	r.mu.Unlock()
	if ok {
		<-e.ready
		if e.err == nil {
			return e.thr, true
		}
		return elsa.Threshold{}, false
	}
	if thr, ok := r.load(key); ok {
		// Cache the disk hit so later lookups skip the file read.
		r.mu.Lock()
		if _, exists := r.entries[key]; !exists {
			done := &thrEntry{ready: make(chan struct{}), thr: thr}
			close(done.ready)
			r.entries[key] = done
		}
		r.mu.Unlock()
		return thr, true
	}
	return elsa.Threshold{}, false
}

// resolve loads the persisted threshold or calibrates and persists one.
func (r *thresholdRegistry) resolve(key thrKey, calib func() (elsa.Threshold, error)) (elsa.Threshold, error) {
	if thr, ok := r.load(key); ok {
		return thr, nil
	}
	thr, err := calib()
	if err != nil {
		return elsa.Threshold{}, err
	}
	r.metrics.ObserveCalibration()
	r.save(key, thr)
	return thr, nil
}

// load reads a previously persisted threshold for key. A file that fails
// to parse — a torn write from a crash before fsync semantics landed, or
// disk corruption — is removed so the operating point recalibrates
// cleanly instead of tripping on the same opaque error every restart.
// Files whose stored p disagrees with the key (a hash collision or a
// stale hand-edited file) are left alone but ignored.
func (r *thresholdRegistry) load(key thrKey) (elsa.Threshold, bool) {
	if r.dir == "" {
		return elsa.Threshold{}, false
	}
	path := r.path(key)
	f, err := os.Open(path)
	if err != nil {
		return elsa.Threshold{}, false
	}
	defer f.Close()
	thr, err := elsa.LoadThreshold(f)
	if err != nil {
		r.metrics.ObserveThresholdCorrupt()
		os.Remove(path) //nolint:errcheck // best effort; a miss recalibrates anyway
		return elsa.Threshold{}, false
	}
	if thr.P != key.p {
		return elsa.Threshold{}, false
	}
	// A load is a use: refresh the file's mtime so the eviction cap (see
	// enforceCap) removes the operating points nobody asks for anymore.
	now := time.Now()
	os.Chtimes(path, now, now) //nolint:errcheck // LRU hint only
	r.metrics.ObserveThresholdLoad()
	return thr, true
}

// save persists a calibrated threshold, best effort: serving never fails
// because the state dir is read-only. Write-fsync-rename keeps a crashed
// server (or machine) from leaving a truncated file a restart would
// reject: the data is durable before the name points at it.
func (r *thresholdRegistry) save(key thrKey, thr elsa.Threshold) {
	if r.dir == "" {
		return
	}
	tmp, err := os.CreateTemp(r.dir, "threshold-*.tmp")
	if err != nil {
		return
	}
	if err := elsa.SaveThreshold(tmp, thr); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), r.path(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	// Durable rename needs the directory entry flushed too; a failure
	// here only risks losing the entry on power loss, never corruption.
	if d, err := os.Open(r.dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
	r.enforceCap()
}

// enforceCap removes the oldest threshold files beyond maxFiles, by
// modification time — the state dir's LRU. Loads refresh their file's
// mtime, so operating points still in use survive; other state-dir
// files (spilled sessions) are neither counted nor touched.
func (r *thresholdRegistry) enforceCap() {
	if r.maxFiles <= 0 {
		return
	}
	dirents, err := os.ReadDir(r.dir)
	if err != nil {
		return
	}
	type tf struct {
		name string
		mod  time.Time
	}
	var files []tf
	for _, e := range dirents {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "threshold-") || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, tf{e.Name(), info.ModTime()})
	}
	if len(files) <= r.maxFiles {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for _, f := range files[:len(files)-r.maxFiles] {
		if os.Remove(filepath.Join(r.dir, f.name)) == nil {
			r.metrics.ObserveThresholdEviction()
		}
	}
}

// path derives a stable filename from the full operating point, so the
// same configuration maps to the same file across restarts.
func (r *thresholdRegistry) path(key thrKey) string {
	h := fnv.New64a()
	o := key.opts
	fmt.Fprintf(h, "d=%d k=%d quant=%t scale=%g seed=%d hw=%+v p=%g",
		o.HeadDim, o.HashBits, o.Quantized, o.Scale, o.Seed, o.Hardware, key.p)
	return filepath.Join(r.dir, fmt.Sprintf("threshold-%016x.json", h.Sum64()))
}
