package model

import (
	"testing"
)

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.HeadDim != 64 {
			t.Errorf("%s: head dim %d, paper uses 64 everywhere", s.Name, s.HeadDim)
		}
		if s.String() == "" {
			t.Errorf("%s: empty String", s.Name)
		}
	}
	if len(All()) != 5 {
		t.Errorf("paper evaluates 5 models, got %d", len(All()))
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "x", Layers: 0, Heads: 1, HeadDim: 1, Hidden: 1, FFNDim: 1, MaxSeq: 1},
		{Name: "x", Layers: 1, Heads: 2, HeadDim: 3, Hidden: 5, FFNDim: 1, MaxSeq: 1},
		{Name: "x", Layers: 1, Heads: 1, HeadDim: 1, Hidden: 1, FFNDim: 0, MaxSeq: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("BERT-large")
	if err != nil || s.Layers != 24 {
		t.Errorf("ByName failed: %v %v", s, err)
	}
	if _, err := ByName("GPT-9"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestBERTLargeSublayerCount(t *testing.T) {
	// The paper cites BERT-large's 384 attention sub-layers (§III-E).
	if got := BERTLarge.AttentionSublayers(); got != 384 {
		t.Errorf("BERT-large sublayers = %d, want 384", got)
	}
}

func TestKindString(t *testing.T) {
	if NLP.String() != "nlp" || Recommender.String() != "recommender" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestLayerFLOPsBERTLarge(t *testing.T) {
	l := BERTLarge.Layer(512, 1)
	// QKV: 2·3·512·1024² = 3.221 GFLOP.
	if want := int64(2 * 3 * 512 * 1024 * 1024); l.QKVProj != want {
		t.Errorf("QKVProj = %d, want %d", l.QKVProj, want)
	}
	// Attention score: 2·16·512²·64 = 0.537 GFLOP; weighted the same.
	if want := int64(2 * 16 * 512 * 512 * 64); l.AttnScore != want || l.AttnWeighted != want {
		t.Errorf("attention matmuls = %d/%d, want %d", l.AttnScore, l.AttnWeighted, want)
	}
	if want := int64(16 * 512 * 512); l.AttnSoftmax != want {
		t.Errorf("softmax = %d, want %d", l.AttnSoftmax, want)
	}
	if want := int64(2 * 2 * 512 * 1024 * 4096); l.FFN != want {
		t.Errorf("FFN = %d, want %d", l.FFN, want)
	}
	if l.Total() != l.Attention()+l.Other() {
		t.Error("Total must equal Attention+Other")
	}
}

func TestModelScalesLayer(t *testing.T) {
	l := BERTLarge.Layer(512, 1)
	m := BERTLarge.Model(512, 1)
	if m.Total() != l.Total()*24 {
		t.Errorf("Model total %d != 24×layer %d", m.Total(), l.Total()*24)
	}
}

func TestFFNDivReducesOnlyFFN(t *testing.T) {
	full := BERTLarge.Layer(512, 1)
	quarter := BERTLarge.Layer(512, 4)
	if quarter.FFN*4 != full.FFN {
		t.Errorf("ffnDiv=4 should quarter FFN: %d vs %d", quarter.FFN, full.FFN)
	}
	if quarter.Attention() != full.Attention() || quarter.QKVProj != full.QKVProj {
		t.Error("ffnDiv must not touch other operators")
	}
	if zero := BERTLarge.Layer(512, 0); zero.FFN != full.FFN {
		t.Error("ffnDiv < 1 should clamp to 1")
	}
}

// The quadratic-vs-linear scaling behind Fig 2: quadrupling the sequence
// quadruples attention's relative weight versus the linear operators.
func TestAttentionShareGrowsQuadratically(t *testing.T) {
	base := BERTLarge.AttentionFLOPShare(512, 1)
	long := BERTLarge.AttentionFLOPShare(2048, 1)
	if long <= base {
		t.Errorf("share must grow with n: %g -> %g", base, long)
	}
	// Reducing FFN dimension raises the attention share further.
	reduced := BERTLarge.AttentionFLOPShare(2048, 4)
	if reduced <= long {
		t.Errorf("share must grow when FFN shrinks: %g -> %g", long, reduced)
	}
	if base <= 0 || base >= 1 || reduced >= 1 {
		t.Errorf("shares out of range: %g %g", base, reduced)
	}
}

// Recommendation models are attention-heavier relative to their tiny FFNs
// at equal sequence occupancy.
func TestAttentionShareAcrossModels(t *testing.T) {
	for _, s := range All() {
		share := s.AttentionFLOPShare(s.MaxSeq, 1)
		if share <= 0 || share >= 1 {
			t.Errorf("%s: share %g out of range", s.Name, share)
		}
	}
}
