// Package model defines the self-attention-oriented neural-network
// configurations the paper evaluates (§V-A) — BERT-large, RoBERTa-large,
// ALBERT-large, SASRec, BERT4Rec — and the per-operator FLOP decomposition
// used to reproduce Fig 2 (the fraction of model runtime spent in
// self-attention).
//
// Only the shapes matter for this reproduction: ELSA's behaviour depends on
// n, d, the number of heads and layers, and the relative cost of the
// surrounding projections and feed-forward blocks, not on trained weights.
package model

import "fmt"

// Kind distinguishes task families, which choose different accuracy proxies
// and dataset length distributions.
type Kind int

const (
	// NLP models run question answering / classification workloads.
	NLP Kind = iota
	// Recommender models run sequential recommendation workloads.
	Recommender
)

func (k Kind) String() string {
	switch k {
	case NLP:
		return "nlp"
	case Recommender:
		return "recommender"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is a transformer-style model configuration.
type Spec struct {
	Name    string
	Kind    Kind
	Layers  int
	Heads   int
	HeadDim int // d: per-head dimension (64 for all evaluated models)
	Hidden  int // model width, Heads·HeadDim
	FFNDim  int // feed-forward inner dimension
	MaxSeq  int // n: maximum number of input entities
}

// Validate checks internal consistency.
func (s Spec) Validate() error {
	if s.Layers < 1 || s.Heads < 1 || s.HeadDim < 1 || s.MaxSeq < 1 {
		return fmt.Errorf("model %q: non-positive dimension", s.Name)
	}
	if s.Hidden != s.Heads*s.HeadDim {
		return fmt.Errorf("model %q: hidden %d != heads %d × head dim %d",
			s.Name, s.Hidden, s.Heads, s.HeadDim)
	}
	if s.FFNDim < 1 {
		return fmt.Errorf("model %q: non-positive FFN dim", s.Name)
	}
	return nil
}

func (s Spec) String() string {
	return fmt.Sprintf("%s(L=%d H=%d d=%d ffn=%d n=%d)",
		s.Name, s.Layers, s.Heads, s.HeadDim, s.FFNDim, s.MaxSeq)
}

// The evaluated model zoo. Shapes follow the published configurations; all
// use d = 64 per head, as the paper notes (§IV-E).
var (
	BERTLarge = Spec{
		Name: "BERT-large", Kind: NLP,
		Layers: 24, Heads: 16, HeadDim: 64, Hidden: 1024, FFNDim: 4096, MaxSeq: 512,
	}
	RoBERTaLarge = Spec{
		Name: "RoBERTa-large", Kind: NLP,
		Layers: 24, Heads: 16, HeadDim: 64, Hidden: 1024, FFNDim: 4096, MaxSeq: 512,
	}
	ALBERTLarge = Spec{
		Name: "ALBERT-large", Kind: NLP,
		Layers: 24, Heads: 16, HeadDim: 64, Hidden: 1024, FFNDim: 4096, MaxSeq: 512,
	}
	SASRec = Spec{
		Name: "SASRec", Kind: Recommender,
		Layers: 3, Heads: 1, HeadDim: 64, Hidden: 64, FFNDim: 256, MaxSeq: 200,
	}
	BERT4Rec = Spec{
		Name: "BERT4Rec", Kind: Recommender,
		Layers: 3, Heads: 2, HeadDim: 64, Hidden: 128, FFNDim: 512, MaxSeq: 200,
	}
)

// All lists the evaluated models in the paper's presentation order.
func All() []Spec {
	return []Spec{BERTLarge, RoBERTaLarge, ALBERTLarge, SASRec, BERT4Rec}
}

// ByName looks a model up by its display name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("model: unknown model %q", name)
}

// AttentionSublayers returns the total number of attention sub-layers
// (layers × heads), e.g. 384 for BERT-large — the count the paper cites
// when motivating automatic threshold learning (§III-E).
func (s Spec) AttentionSublayers() int { return s.Layers * s.Heads }
