package model

// LayerFLOPs decomposes one transformer layer's inference cost at sequence
// length n into the operator classes whose GPU efficiencies differ. Counts
// are floating-point operations (a multiply-accumulate counts as two).
type LayerFLOPs struct {
	// QKVProj is the cost of the three input projections (Q, K, V).
	QKVProj int64
	// AttnScore is Q·Kᵀ across all heads.
	AttnScore int64
	// AttnSoftmax is the softmax over the n×n score matrix per head.
	AttnSoftmax int64
	// AttnWeighted is S′·V across all heads.
	AttnWeighted int64
	// OutProj is the attention output projection.
	OutProj int64
	// FFN is the two feed-forward matrix multiplications.
	FFN int64
}

// Attention returns the FLOPs of the self-attention operator itself — the
// part ELSA accelerates (score + softmax + weighted sum, §II-B).
func (l LayerFLOPs) Attention() int64 { return l.AttnScore + l.AttnSoftmax + l.AttnWeighted }

// Other returns the FLOPs of everything surrounding the attention operator.
func (l LayerFLOPs) Other() int64 { return l.QKVProj + l.OutProj + l.FFN }

// Total returns the layer's complete FLOP count.
func (l LayerFLOPs) Total() int64 { return l.Attention() + l.Other() }

// Layer computes the FLOP decomposition of one layer of s at sequence
// length n with the feed-forward inner dimension divided by ffnDiv
// (ffnDiv = 1 is the published model; ffnDiv = 4 models the reduced-FFN
// variants of the paper's Fig 2 right-hand side). ffnDiv < 1 is treated
// as 1.
func (s Spec) Layer(n int, ffnDiv int) LayerFLOPs {
	if ffnDiv < 1 {
		ffnDiv = 1
	}
	nn := int64(n)
	h := int64(s.Hidden)
	f := int64(s.FFNDim) / int64(ffnDiv)
	heads := int64(s.Heads)
	d := int64(s.HeadDim)
	return LayerFLOPs{
		QKVProj:      2 * 3 * nn * h * h,
		AttnScore:    2 * heads * nn * nn * d,
		AttnSoftmax:  heads * nn * nn,
		AttnWeighted: 2 * heads * nn * nn * d,
		OutProj:      2 * nn * h * h,
		FFN:          2 * 2 * nn * h * f,
	}
}

// Model sums the decomposition over all layers.
func (s Spec) Model(n int, ffnDiv int) LayerFLOPs {
	l := s.Layer(n, ffnDiv)
	mul := int64(s.Layers)
	return LayerFLOPs{
		QKVProj:      l.QKVProj * mul,
		AttnScore:    l.AttnScore * mul,
		AttnSoftmax:  l.AttnSoftmax * mul,
		AttnWeighted: l.AttnWeighted * mul,
		OutProj:      l.OutProj * mul,
		FFN:          l.FFN * mul,
	}
}

// AttentionFLOPShare returns the raw FLOP fraction of the attention
// operator, before any hardware-efficiency weighting (the device package
// converts FLOPs into time).
func (s Spec) AttentionFLOPShare(n int, ffnDiv int) float64 {
	m := s.Model(n, ffnDiv)
	return float64(m.Attention()) / float64(m.Total())
}
