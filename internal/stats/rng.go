package stats

import "math/rand"

// RNG wraps math/rand with the handful of distributions the reproduction
// needs. Every stochastic component in the repository draws through an RNG
// seeded explicitly, so experiments are reproducible run to run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Norm returns a standard normal sample.
func (g *RNG) Norm() float64 { return g.r.NormFloat64() }

// NormVec fills a fresh length-n vector with i.i.d. N(0,1) samples.
func (g *RNG) NormVec(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(g.r.NormFloat64())
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Zipf returns integer samples in [0, n) following an approximate Zipf
// distribution with exponent s > 1. Used by the recommendation workload to
// model item popularity skew in MovieLens-style traces.
func (g *RNG) Zipf(s float64, n int) int {
	if n <= 1 {
		return 0
	}
	z := rand.NewZipf(g.r, s, 1, uint64(n-1))
	if z == nil {
		return g.r.Intn(n)
	}
	return int(z.Uint64())
}

// Split derives an independent generator whose stream does not overlap with
// the parent's in practice. Handy for fanning out per-layer workloads.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}
