package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %g, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(g, 10, 1e-9) {
		t.Errorf("GeoMean(1,100) = %g, want 10", g)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean(nil) should error")
	}
	if _, err := GeoMean([]float64{1, -2}); err == nil {
		t.Error("GeoMean with negative should error")
	}
	if _, err := GeoMean([]float64{0}); err == nil {
		t.Error("GeoMean with zero should error")
	}
}

func TestMustGeoMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGeoMean should panic on invalid input")
		}
	}()
	MustGeoMean([]float64{-1})
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		q, want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{40, 29}, // interpolated: rank 1.6 -> 20 + 0.6*(35-20)
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile of empty should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile out of range should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile should error")
	}
	one, err := Percentile([]float64{7}, 80)
	if err != nil || one != 7 {
		t.Errorf("Percentile singleton = %g, %v; want 7, nil", one, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -2, 8, 0}
	if Min(xs) != -2 {
		t.Errorf("Min = %g", Min(xs))
	}
	if Max(xs) != 8 {
		t.Errorf("Max = %g", Max(xs))
	}
	if Sum(xs) != 9 {
		t.Errorf("Sum = %g", Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +/-Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should be zero")
	}
	if s.String() == "" {
		t.Error("String should render")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	// -1, 0, 1.9 in bin 0; 2 in bin 1; 5 in bin 2; 9.9, 10, 42 in bin 4.
	want := []int{3, 1, 1, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if !almostEq(h.Fraction(0), 3.0/8, 1e-12) {
		t.Errorf("Fraction(0) = %g", h.Fraction(0))
	}
	if !almostEq(h.BinCenter(0), 1, 1e-12) {
		t.Errorf("BinCenter(0) = %g", h.BinCenter(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
}

// Property: mean lies within [min, max] for any non-empty sample.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in q.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		qa := float64(a) / 255 * 100
		qb := float64(b) / 255 * 100
		if qa > qb {
			qa, qb = qb, qa
		}
		pa, err1 := Percentile(clean, qa)
		pb, err2 := Percentile(clean, qb)
		return err1 == nil && err2 == nil && pa <= pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different streams")
	}
}

func TestRNGNormVecMoments(t *testing.T) {
	g := NewRNG(7)
	v := g.NormVec(20000)
	xs := make([]float64, len(v))
	for i, x := range v {
		xs[i] = float64(x)
	}
	if m := Mean(xs); math.Abs(m) > 0.05 {
		t.Errorf("normal mean = %g, want ~0", m)
	}
	if sd := StdDev(xs); math.Abs(sd-1) > 0.05 {
		t.Errorf("normal sd = %g, want ~1", sd)
	}
}

func TestRNGZipfSkew(t *testing.T) {
	g := NewRNG(11)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[g.Zipf(1.5, 100)]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf should be head-heavy: head=%d mid=%d", counts[0], counts[50])
	}
	if g.Zipf(1.5, 1) != 0 {
		t.Error("Zipf with n=1 must return 0")
	}
}

func TestRNGHelpers(t *testing.T) {
	g := NewRNG(3)
	if n := g.Intn(10); n < 0 || n >= 10 {
		t.Errorf("Intn out of range: %d", n)
	}
	if g.Int63() < 0 {
		t.Error("Int63 must be non-negative")
	}
	p := g.Perm(5)
	seen := make(map[int]bool)
	for _, x := range p {
		seen[x] = true
	}
	if len(seen) != 5 {
		t.Errorf("Perm not a permutation: %v", p)
	}
	if g.Split() == nil {
		t.Error("Split returned nil")
	}
}
