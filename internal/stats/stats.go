// Package stats provides small statistical helpers shared across the ELSA
// reproduction: summary statistics, percentiles, geometric means, and
// histograms. All functions are deterministic and allocation-conscious so
// they can be used inside benchmarks and the cycle simulator.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when fewer than two
// samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// GeoMean returns the geometric mean of xs. All samples must be positive;
// non-positive samples yield an error because the geometric mean is
// undefined for them (the paper reports geomean speedups, which are always
// ratios of positive runtimes).
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean of non-positive sample %g", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// MustGeoMean is GeoMean for callers that have already validated positivity;
// it panics on error and is intended for experiment tables built from
// simulator output that is positive by construction.
func MustGeoMean(xs []float64) float64 {
	g, err := GeoMean(xs)
	if err != nil {
		panic(err)
	}
	return g
}

// Percentile returns the q-th percentile (0 <= q <= 100) of xs using linear
// interpolation between closest ranks, matching numpy's default behaviour.
// The input slice is not modified.
func Percentile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 100 {
		return 0, fmt.Errorf("stats: percentile %g out of range [0,100]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	p50, _ := Percentile(xs, 50)
	p90, _ := Percentile(xs, 90)
	p99, _ := Percentile(xs, 99)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    p50,
		P90:    p90,
		P99:    p99,
		Max:    Max(xs),
	}
}

// String renders the summary on one line for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Samples outside the
// range are clamped into the first or last bin so no observation is lost,
// which matters when histogramming simulator latencies with rare outliers.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equally spaced bins over
// [lo, hi). It panics if bins < 1 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations that landed in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}
