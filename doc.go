// Package elsa is a software reproduction of ELSA — the
// hardware-software co-designed approximate self-attention accelerator
// from "ELSA: Hardware-Software Co-design for Efficient, Lightweight
// Self-Attention Mechanism in Neural Networks" (ISCA 2021).
//
// The package exposes four capabilities:
//
//   - Exact self-attention — the reference operator
//     softmax(scale·Q·Kᵀ)·V.
//
//   - Approximate self-attention — ELSA's algorithm: sign-random-projection
//     binary hashes computed through Kronecker-structured orthogonal
//     projections, Hamming-distance angle estimation with a calibrated
//     θ_bias, norm-weighted approximate similarities, and a learned
//     per-layer threshold that filters irrelevant keys before any exact
//     dot product is spent on them.
//
//   - Threshold calibration — the paper's automatic scheme that converts a
//     single user hyperparameter p (degree of approximation) into
//     layer-specific thresholds by inspecting attention distributions on
//     calibration data.
//
//   - Hardware simulation — a cycle-level model of the ELSA accelerator
//     (hash/norm units, banked candidate-selection modules,
//     longest-queue-first arbitration, parallel attention modules, output
//     division) with an energy model seeded by the paper's Table I
//     synthesis numbers.
//
// # Quick start
//
//	eng, err := elsa.New(elsa.Options{HeadDim: 64, Seed: 1})
//	if err != nil { ... }
//	thr, err := eng.Calibrate(1.0, calibrationSamples) // p = 1, conservative
//	out, err := eng.Attend(q, k, v, thr)
//	rep, err := eng.Simulate(q, k, v, thr) // cycles, joules, bottlenecks
//
// Batch helpers mirror the accelerator's batch-level parallelism in
// software: AttendBatch / AttendBatchContext fan a batch of ops across
// worker goroutines (with context cancellation for serving deadlines), and
// cmd/elsaserve wraps the engine in a long-running HTTP service
// (internal/serve) with dynamic micro-batching, an engine pool, and
// Prometheus-format metrics.
//
// The internal packages implement every substrate from scratch: dense
// linear algebra, SRP hashing, Kronecker projections, fixed-point
// arithmetic and LUT functional units, transformer model configurations,
// synthetic dataset workloads, device comparators (V100, TPUv2, A³, an
// ideal accelerator), and runners for every table and figure in the
// paper's evaluation (see internal/experiments, cmd/elsabench, and
// EXPERIMENTS.md).
package elsa
