package elsa

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	orig := newEngine(t, Options{Seed: 50})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Bias() != orig.Bias() {
		t.Errorf("bias changed across round trip: %g vs %g", restored.Bias(), orig.Bias())
	}
	if restored.Options().HashBits != orig.Options().HashBits {
		t.Error("options changed across round trip")
	}
	// Bit-identical behaviour: same candidates, same outputs, including
	// under a learned threshold.
	cq, ck, _ := genData(rng, 48, 96, 64)
	thr, err := orig.Calibrate(1, []Sample{{Q: cq, K: ck}})
	if err != nil {
		t.Fatal(err)
	}
	q, k, v := genData(rng, 32, 64, 64)
	a, err := orig.Attend(q, k, v, thr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Attend(q, k, v, thr)
	if err != nil {
		t.Fatal(err)
	}
	if a.CandidateFraction != b.CandidateFraction || a.FallbackQueries != b.FallbackQueries {
		t.Fatal("restored engine selects different candidates")
	}
	for i := range a.Context {
		for j := range a.Context[i] {
			if a.Context[i][j] != b.Context[i][j] {
				t.Fatalf("restored engine output differs at %d,%d", i, j)
			}
		}
	}
	// The restored engine's simulator must work too.
	if _, err := restored.Simulate(q, k, v, thr); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreValidation(t *testing.T) {
	orig := newEngine(t, Options{Seed: 51})
	snap := orig.Snapshot()

	bad := snap
	bad.Version = 99
	if _, err := Restore(bad); err == nil {
		t.Error("wrong version should error")
	}

	bad = snap
	bad.Batches = nil
	if _, err := Restore(bad); err == nil {
		t.Error("missing batches should error")
	}

	bad = orig.Snapshot()
	bad.Batches[0] = bad.Batches[0][:1] // corrupt factor structure
	if _, err := Restore(bad); err == nil {
		t.Error("corrupted factors should error")
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	if _, err := LoadEngine(strings.NewReader("not json")); err == nil {
		t.Error("garbage input should error")
	}
}

func TestSnapshotDefaultsApplyOnRestore(t *testing.T) {
	orig := newEngine(t, Options{Seed: 52})
	snap := orig.Snapshot()
	snap.Options.Hardware = Hardware{} // zero hardware -> default on restore
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Options().Hardware != DefaultHardware() {
		t.Error("zero hardware should restore to the default")
	}
}
