package elsa

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"elsa/internal/attention"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	orig := newEngine(t, Options{Seed: 50})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Bias() != orig.Bias() {
		t.Errorf("bias changed across round trip: %g vs %g", restored.Bias(), orig.Bias())
	}
	if restored.Options().HashBits != orig.Options().HashBits {
		t.Error("options changed across round trip")
	}
	// Bit-identical behaviour: same candidates, same outputs, including
	// under a learned threshold.
	cq, ck, _ := genData(rng, 48, 96, 64)
	thr, err := orig.Calibrate(1, []Sample{{Q: cq, K: ck}})
	if err != nil {
		t.Fatal(err)
	}
	q, k, v := genData(rng, 32, 64, 64)
	a, err := orig.Attend(q, k, v, thr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Attend(q, k, v, thr)
	if err != nil {
		t.Fatal(err)
	}
	if a.CandidateFraction != b.CandidateFraction || a.FallbackQueries != b.FallbackQueries {
		t.Fatal("restored engine selects different candidates")
	}
	for i := range a.Context {
		for j := range a.Context[i] {
			if a.Context[i][j] != b.Context[i][j] {
				t.Fatalf("restored engine output differs at %d,%d", i, j)
			}
		}
	}
	// The restored engine's simulator must work too.
	if _, err := restored.Simulate(q, k, v, thr); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreValidation(t *testing.T) {
	orig := newEngine(t, Options{Seed: 51})
	snap := orig.Snapshot()

	bad := snap
	bad.Version = 99
	if _, err := Restore(bad); err == nil {
		t.Error("wrong version should error")
	}

	bad = snap
	bad.Batches = nil
	if _, err := Restore(bad); err == nil {
		t.Error("missing batches should error")
	}

	bad = orig.Snapshot()
	bad.Batches[0] = bad.Batches[0][:1] // corrupt factor structure
	if _, err := Restore(bad); err == nil {
		t.Error("corrupted factors should error")
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	if _, err := LoadEngine(strings.NewReader("not json")); err == nil {
		t.Error("garbage input should error")
	}
}

func TestThresholdRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		thr  Threshold
	}{
		{"calibrated", Threshold{P: 1, T: 0.3127, Queries: 96}},
		{"exact fallback p=0", Exact()},
		{"very small t", Threshold{P: 8, T: 1e-300, Queries: 1}},
		{"very large t", Threshold{P: 0.25, T: 1e300, Queries: 3}},
		{"negative t", Threshold{P: 2, T: -1.5, Queries: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := SaveThreshold(&buf, tc.thr); err != nil {
				t.Fatal(err)
			}
			got, err := LoadThreshold(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.thr {
				t.Errorf("round trip changed the threshold: %+v vs %+v", got, tc.thr)
			}
		})
	}
}

func TestThresholdLoadNormalizesExactFallback(t *testing.T) {
	// A p=0 record must come back filter-disabled even if its stored t is
	// some other (stale) value.
	got, err := LoadThreshold(strings.NewReader(`{"version":1,"p":0,"t":0.75,"queries":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.T != attention.ExactThresholdNoApprox {
		t.Errorf("p=0 should load as the exact threshold, got t=%g", got.T)
	}
	if got.Queries != 4 {
		t.Errorf("queries should survive, got %d", got.Queries)
	}
}

func TestThresholdSaveRejectsNonFinite(t *testing.T) {
	for _, thr := range []Threshold{
		{P: 1, T: math.NaN()},
		{P: 1, T: math.Inf(1)},
		{P: math.NaN(), T: 0.5},
		{P: -1, T: 0.5},
		{P: 1, T: 0.5, Queries: -2},
	} {
		var buf bytes.Buffer
		if err := SaveThreshold(&buf, thr); err == nil {
			t.Errorf("threshold %+v should be rejected", thr)
		}
	}
}

func TestThresholdLoadErrorPaths(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"garbage", "not json"},
		{"truncated", `{"version":1,"p":1`},
		{"wrong version", `{"version":9,"p":1,"t":0.5}`},
		{"negative p", `{"version":1,"p":-2,"t":0.5}`},
		{"negative queries", `{"version":1,"p":1,"t":0.5,"queries":-1}`},
	}
	for _, tc := range cases {
		if _, err := LoadThreshold(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: corrupted threshold file should error", tc.name)
		}
	}
}

func TestThresholdRoundTripThroughCalibration(t *testing.T) {
	// A threshold calibrated on real data survives the disk round trip and
	// selects identical candidates afterwards.
	rng := rand.New(rand.NewSource(53))
	e := newEngine(t, Options{Seed: 53})
	cq, ck, _ := genData(rng, 32, 64, 64)
	thr, err := e.Calibrate(1, []Sample{{Q: cq, K: ck}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveThreshold(&buf, thr); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadThreshold(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q, k, v := genData(rng, 16, 48, 64)
	a, err := e.Attend(q, k, v, thr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Attend(q, k, v, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if a.CandidateFraction != b.CandidateFraction {
		t.Error("loaded threshold selects different candidates")
	}
}

func TestSnapshotDefaultsApplyOnRestore(t *testing.T) {
	orig := newEngine(t, Options{Seed: 52})
	snap := orig.Snapshot()
	snap.Options.Hardware = Hardware{} // zero hardware -> default on restore
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Options().Hardware != DefaultHardware() {
		t.Error("zero hardware should restore to the default")
	}
}
