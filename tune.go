package elsa

import (
	"fmt"

	"elsa/internal/attention"
)

// TuneResult reports an automatic degree-of-approximation search.
type TuneResult struct {
	// Threshold is the selected operating point.
	Threshold Threshold
	// LossPct is the measured accuracy-proxy loss at that point, in
	// percentage points.
	LossPct float64
	// CandidateFraction is the measured mean candidate fraction.
	CandidateFraction float64
	// Evaluated lists every (p, loss) pair the search measured.
	Evaluated []TunePoint
}

// TunePoint is one evaluated candidate operating point.
type TunePoint struct {
	P                 float64
	LossPct           float64
	CandidateFraction float64
}

// TuneP finds the most aggressive degree of approximation whose measured
// accuracy-proxy loss on the validation set stays at or below maxLossPct —
// the paper's recommended tuning flow (§IV-E: "tune this parameter with
// the validation dataset ... p is a hyperparameter that (almost)
// monotonously increases accuracy as its value decreases").
//
// calib supplies the threshold-learning invocations; validation supplies
// held-out invocations for measuring loss. The search bisects p over
// [pLo, pHi] (defaults 0.25 and 16 when zero) to the given number of
// refinement steps.
func (e *Engine) TuneP(maxLossPct float64, calib []Sample, validation []BatchOp, pLo, pHi float64, steps int) (TuneResult, error) {
	if maxLossPct <= 0 {
		return TuneResult{}, fmt.Errorf("elsa: loss budget must be positive, got %g", maxLossPct)
	}
	if len(validation) == 0 {
		return TuneResult{}, fmt.Errorf("elsa: tuning needs validation data")
	}
	if pLo <= 0 {
		pLo = 0.25
	}
	if pHi <= pLo {
		pHi = 16
	}
	if steps <= 0 {
		steps = 6
	}

	measure := func(p float64) (TunePoint, Threshold, error) {
		thr, err := e.Calibrate(p, calib)
		if err != nil {
			return TunePoint{}, Threshold{}, err
		}
		var loss, frac float64
		for _, op := range validation {
			_, fid, err := e.Evaluate(op.Q, op.K, op.V, thr)
			if err != nil {
				return TunePoint{}, Threshold{}, err
			}
			loss += attention.ProxyAccuracyLoss(attention.Fidelity{RetainedMass: fid.RetainedMass},
				attention.DefaultSensitivity)
			out, err := e.Attend(op.Q, op.K, op.V, thr)
			if err != nil {
				return TunePoint{}, Threshold{}, err
			}
			frac += out.CandidateFraction
		}
		n := float64(len(validation))
		return TunePoint{P: p, LossPct: loss / n, CandidateFraction: frac / n}, thr, nil
	}

	res := TuneResult{}
	// Feasibility check at the conservative end.
	lowPt, lowThr, err := measure(pLo)
	if err != nil {
		return TuneResult{}, err
	}
	res.Evaluated = append(res.Evaluated, lowPt)
	if lowPt.LossPct > maxLossPct {
		// Even the most conservative point misses the budget: fall back
		// to exact attention.
		res.Threshold = Exact()
		res.LossPct = 0
		res.CandidateFraction = 1
		return res, nil
	}
	best, bestThr := lowPt, lowThr

	// Check the aggressive end; if it fits, take it outright.
	hiPt, hiThr, err := measure(pHi)
	if err != nil {
		return TuneResult{}, err
	}
	res.Evaluated = append(res.Evaluated, hiPt)
	if hiPt.LossPct <= maxLossPct {
		res.Threshold = hiThr
		res.LossPct = hiPt.LossPct
		res.CandidateFraction = hiPt.CandidateFraction
		return res, nil
	}

	// Bisect: loss is (almost) monotone increasing in p.
	lo, hi := pLo, pHi
	for i := 0; i < steps; i++ {
		mid := (lo + hi) / 2
		pt, thr, err := measure(mid)
		if err != nil {
			return TuneResult{}, err
		}
		res.Evaluated = append(res.Evaluated, pt)
		if pt.LossPct <= maxLossPct {
			best, bestThr = pt, thr
			lo = mid
		} else {
			hi = mid
		}
	}
	res.Threshold = bestThr
	res.LossPct = best.LossPct
	res.CandidateFraction = best.CandidateFraction
	return res, nil
}
