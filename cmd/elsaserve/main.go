// Command elsaserve runs the ELSA attention service: a long-running HTTP
// server that coalesces concurrent attention requests into micro-batches
// and routes them across replicated engines (the software analogue of the
// accelerator's batch-level parallelism across replicated modules,
// §IV-D), hosts autoregressive decode sessions over incremental
// preprocessing state, persists calibrated thresholds across restarts,
// and exposes Prometheus-format runtime metrics.
//
// Usage:
//
//	elsaserve [-addr :8080] [-batch-window 2ms] [-max-batch 64]
//	          [-queue 256] [-attend-workers 0] [-timeout 30s]
//	          [-replicas 0] [-max-engines 8]
//	          [-max-sessions 1024] [-session-ttl 15m] [-session-tokens 65536]
//	          [-state-dir /var/lib/elsa] [-max-threshold-files 512]
//	          [-session-spill 0] [-cold-watermark 0]
//	          [-quota-rps 0] [-quota-burst 0] [-class-weights 16,4,1]
//	          [-worker | -workers host:port,...]
//	          [-worker-probe-interval 5s] [-worker-inflight 32]
//	          [-worker-fail-limit 3] [-dispatch-retries 2]
//	          [-join http://frontend:8080 -advertise host:port]
//	          [-heartbeat-interval 5s] [-weight 1] [-drain-timeout 1m]
//	          [-autoscale] [-autoscale-interval 2s] [-compat-legacy]
//	          [-sync-mirror] [-exact-backend scores|linear-scan]
//
// Cross-host sharding: `-workers host:port,...` makes this server a fleet
// frontend — micro-batch ops route to the listed elsaserve workers
// alongside any local replicas, with periodic health probes, ejection
// after consecutive failures, and retry-with-rerouting for idempotent
// attend ops. `-worker` runs a plain worker serving internal traffic (the
// same endpoints; the flag just pins worker-appropriate defaults).
// (`-workers` previously named the per-batch attention worker count; that
// flag is now `-attend-workers`.)
//
// Elastic membership: `-join` points a worker at a frontend's
// /v1/cluster/join — the worker registers itself as `-advertise` and
// heartbeats every `-heartbeat-interval`, so it starts taking traffic
// without a frontend restart and is expired after ~3 missed heartbeats.
// Frontends accept joins with no extra flags; `-workers` remains the
// static seed list and both sources mix freely. POST /v1/drain (or a
// frontend's POST /v1/cluster/drain) drains a server: no new sessions,
// pinned ones are live-migrated onto other members (cluster drain) or
// finish in place, with stragglers force-expired after `-drain-timeout`.
//
// Portable session state: every session's stream serializes to a
// versioned binary blob (POST /v1/sessions/{id}/export) that another
// server rebuilds bit-identically (POST /v1/sessions/import) — the
// substrate for live migration, worker-loss recovery from the frontend's
// shadow copies, and `-session-spill`, which pages sessions idle longer
// than the given duration out to `-state-dir` until their next query.
// `-cold-watermark N` bounds each stream's resident f32 hot tail to at
// most 2N tokens, demoting older entries to the bit-packed cold
// representation the paper's approximate pipeline scores against.
//
// Autoscaling: `-autoscale` runs the elsactl controller in-process on a
// frontend — it watches this server's own GET /v1/cluster signals block
// (queue depth, windowed shed rate, batch occupancy) and closes the loop
// by draining idle members and rebalancing sessions toward fresh
// joiners; scale-out advice is logged for the operator, since launching
// capacity is outside the process. Run `elsactl` as a sidecar instead
// when the controller should survive frontend restarts.
//
// Envelope sunset: bare pre-envelope POST bodies are rejected with a 400
// migration hint by default. `-compat-legacy` restores them during
// migration; the flag is deprecated from day one and will be removed two
// releases after its introduction (see README).
//
// Endpoints:
//
//	POST   /v1/attend               one Q/K/V attention op with degree-of-approximation p
//	POST   /v1/sessions             open an autoregressive decode session
//	POST   /v1/sessions/{id}/append append token key/value(s) to a session
//	POST   /v1/sessions/{id}/query  one decode step over the session prefix
//	POST   /v1/sessions/{id}/export serialize the session's portable state
//	POST   /v1/sessions/import      adopt an exported session under its original ID
//	POST   /v1/sessions/step        one decode step across many sessions (a wave)
//	DELETE /v1/sessions/{id}        close a session
//	GET    /v1/healthz              liveness plus resident engine and session counts
//	GET    /v1/metrics              Prometheus text-format counters and histograms
//	POST   /v1/cluster/join         worker self-registration and heartbeat
//	GET    /v1/cluster              versioned (schema_version 1) membership targets + autoscale signals
//	POST   /v1/cluster/drain        drain one member (rolling upgrade / scale-in)
//	POST   /v1/cluster/rebalance    migrate sessions toward one member (scale-out settling)
//	POST   /v1/drain                drain this server: refuse new sessions, finish pinned ones
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops, queued
// micro-batches are dispatched and drained, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"elsa"
	"elsa/internal/serve"
	"elsa/internal/serve/autoscale"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cfg := serve.Config{}
	flag.DurationVar(&cfg.BatchWindow, "batch-window", 2*time.Millisecond, "micro-batch coalescing window")
	flag.IntVar(&cfg.MaxBatch, "max-batch", 64, "dispatch a batch early at this many ops")
	flag.IntVar(&cfg.MaxQueue, "queue", 256, "bounded dispatcher queue; overflow answers 429")
	flag.IntVar(&cfg.Workers, "attend-workers", 0, "attention workers per batch (0 = GOMAXPROCS)")
	flag.DurationVar(&cfg.RequestTimeout, "timeout", 30*time.Second, "per-request queue+compute deadline")
	flag.IntVar(&cfg.Replicas, "replicas", 0, "local engine replicas (dispatch shards) per configuration (0 = 2 standalone, dispatch-only with -workers)")
	flag.IntVar(&cfg.MaxEngines, "max-engines", 8, "bounded engine pool; LRU eviction beyond this many configurations")
	flag.IntVar(&cfg.MaxSessions, "max-sessions", 1024, "bounded session registry; LRU eviction at capacity")
	flag.DurationVar(&cfg.SessionTTL, "session-ttl", 15*time.Minute, "evict sessions idle longer than this (negative disables)")
	flag.IntVar(&cfg.MaxSessionTokens, "session-tokens", 65536, "per-session appended-token limit")
	flag.StringVar(&cfg.StateDir, "state-dir", "", "persist calibrated thresholds (and spilled sessions) here across restarts (empty = memory only)")
	flag.IntVar(&cfg.MaxThresholdFiles, "max-threshold-files", 512, "cap on threshold files kept in -state-dir, LRU-evicted beyond it (negative = unbounded)")
	flag.DurationVar(&cfg.SessionSpill, "session-spill", 0, "page sessions idle longer than this out to -state-dir (0 = off; requires -state-dir)")
	flag.IntVar(&cfg.ColdWatermark, "cold-watermark", 0, "bound each session stream's resident f32 hot tail to 2x this many tokens; older entries demote to the bit-packed cold form (0 = all hot)")
	flag.Float64Var(&cfg.QuotaRPS, "quota-rps", 0, "per-client admission rate in ops/s, keyed by envelope client_id (0 = quotas off)")
	flag.Float64Var(&cfg.QuotaBurst, "quota-burst", 0, "per-client token-bucket burst (0 = max(1, quota-rps))")
	weights := flag.String("class-weights", "16,4,1", "weighted-dequeue shares for interactive,batch,background traffic")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	workerMode := flag.Bool("worker", false, "run as a fleet worker: serve internal traffic from a frontend (incompatible with -workers)")
	workerAddrs := flag.String("workers", "", "comma-separated remote worker addresses (host:port or URLs); makes this server a fleet frontend")
	flag.DurationVar(&cfg.WorkerProbeInterval, "worker-probe-interval", 5*time.Second, "how often each remote worker's /v1/healthz is probed")
	flag.IntVar(&cfg.WorkerInFlight, "worker-inflight", 32, "max concurrent ops on the wire per remote worker")
	flag.IntVar(&cfg.WorkerFailLimit, "worker-fail-limit", 3, "eject a worker after this many consecutive probe/dispatch failures")
	flag.IntVar(&cfg.DispatchRetries, "dispatch-retries", 2, "reroute a failed idempotent op to a sibling shard this many times")
	join := flag.String("join", "", "frontend URL to self-register with (worker mode; requires -advertise)")
	advertise := flag.String("advertise", "", "address the frontend dials back when joined via -join (host:port or URL)")
	heartbeat := flag.Duration("heartbeat-interval", 5*time.Second, "re-join cadence when joined via -join (floor 1s)")
	weight := flag.Int("weight", 1, "this worker's share of session keyspace on the frontend's hash ring")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", time.Minute, "force-expire sessions still pinned this long after POST /v1/drain (negative waits forever)")
	flag.BoolVar(&cfg.CompatLegacy, "compat-legacy", false, "accept deprecated bare (pre-envelope) POST bodies; to be removed two releases after 0.9")
	flag.BoolVar(&cfg.SyncMirror, "sync-mirror", false, "replay session shadow-mirror appends inline on the request path instead of batched/async")
	flag.StringVar(&cfg.ExactBackend, "exact-backend", "", "default backend for exact ops (p=0) that don't pin one: 'scores' or 'linear-scan' (empty = scores pipeline)")
	autoscaleOn := flag.Bool("autoscale", false, "run the autoscale controller in-process: drain idle members, rebalance toward joiners, log scale-out advice")
	autoscaleInterval := flag.Duration("autoscale-interval", 2*time.Second, "in-process autoscale polling cadence")
	flag.Parse()

	cw, err := parseClassWeights(*weights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elsaserve:", err)
		os.Exit(2)
	}
	cfg.ClassWeights = cw

	if !elsa.ValidBackend(cfg.ExactBackend) {
		fmt.Fprintf(os.Stderr, "elsaserve: -exact-backend %q: want %q or %q\n",
			cfg.ExactBackend, elsa.BackendScores, elsa.BackendLinearScan)
		os.Exit(2)
	}

	if *workerAddrs != "" {
		if *workerMode {
			fmt.Fprintln(os.Stderr, "elsaserve: -worker and -workers are mutually exclusive (a worker does not dispatch to other workers)")
			os.Exit(2)
		}
		for _, a := range strings.Split(*workerAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.WorkerAddrs = append(cfg.WorkerAddrs, a)
			}
		}
	}

	hb := heartbeatConfig{interval: *heartbeat, weight: *weight}
	if *join != "" {
		if *workerAddrs != "" {
			fmt.Fprintln(os.Stderr, "elsaserve: -join and -workers are mutually exclusive (a worker does not dispatch to other workers)")
			os.Exit(2)
		}
		if *advertise == "" {
			fmt.Fprintln(os.Stderr, "elsaserve: -join requires -advertise (the address the frontend dials back)")
			os.Exit(2)
		}
		hb.frontend = strings.TrimSpace(*join)
		hb.advertise = strings.TrimSpace(*advertise)
		if hb.interval < time.Second {
			hb.interval = time.Second
		}
	}

	var asInterval time.Duration
	if *autoscaleOn {
		if *workerMode || *join != "" {
			fmt.Fprintln(os.Stderr, "elsaserve: -autoscale is a frontend concern (incompatible with -worker / -join)")
			os.Exit(2)
		}
		asInterval = *autoscaleInterval
		if asInterval < 100*time.Millisecond {
			asInterval = 100 * time.Millisecond
		}
	}

	if err := run(*addr, cfg, *drain, hb, asInterval); err != nil {
		fmt.Fprintln(os.Stderr, "elsaserve:", err)
		os.Exit(1)
	}
}

// heartbeatConfig carries the -join/-advertise/-heartbeat-interval
// trio into run; an empty frontend means no self-registration.
type heartbeatConfig struct {
	frontend  string
	advertise string
	interval  time.Duration
	weight    int
}

// parseClassWeights parses "16,4,1" into the interactive,batch,background
// dequeue shares.
func parseClassWeights(s string) ([3]int, error) {
	var w [3]int
	parts := strings.Split(s, ",")
	if len(parts) != len(w) {
		return w, fmt.Errorf("-class-weights wants 3 comma-separated integers (interactive,batch,background), got %q", s)
	}
	for i, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return w, fmt.Errorf("-class-weights entry %d must be a positive integer, got %q", i, part)
		}
		w[i] = v
	}
	return w, nil
}

func run(addr string, cfg serve.Config, drain time.Duration, hb heartbeatConfig, autoscaleEvery time.Duration) error {
	srv := serve.New(cfg)
	hs := &http.Server{Addr: addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	role := "standalone"
	if len(cfg.WorkerAddrs) > 0 {
		role = fmt.Sprintf("frontend (%d workers)", len(cfg.WorkerAddrs))
	}
	if hb.frontend != "" {
		role = fmt.Sprintf("worker (joining %s as %s)", hb.frontend, hb.advertise)
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "elsaserve: listening on %s as %s (window %s, max-batch %d, queue %d, replicas %d)\n",
			addr, role, cfg.BatchWindow, cfg.MaxBatch, cfg.MaxQueue, cfg.Replicas)
		errc <- hs.ListenAndServe()
	}()

	var beater *serve.Heartbeater
	if hb.frontend != "" {
		beater = serve.NewHeartbeater(hb.frontend, hb.advertise, hb.interval, hb.weight, srv)
		beater.Start()
	}

	if autoscaleEvery > 0 {
		// The controller talks to this very server over loopback: the
		// same versioned cluster API elsactl uses, so in-process and
		// sidecar deployments are behaviorally identical.
		self := addr
		if strings.HasPrefix(self, ":") {
			self = "127.0.0.1" + self
		}
		ctl := autoscale.NewController("http://" + self)
		ctl.Interval = autoscaleEvery
		ctl.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "elsaserve: "+format+"\n", args...)
		}
		ctl.OnScaleOut = func(adv autoscale.Advice) {
			fmt.Fprintf(os.Stderr, "elsaserve: autoscale advises scale-out: %s — launch a worker with -join to absorb it\n", adv.Reason)
		}
		go ctl.Run(ctx) //nolint:errcheck // exits with ctx at shutdown
	}

	select {
	case err := <-errc:
		if beater != nil {
			beater.Stop()
		}
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "elsaserve: shutting down, draining in-flight batches")
	if beater != nil {
		beater.Stop()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	if lerr := <-errc; lerr != nil && !errors.Is(lerr, http.ErrServerClosed) {
		return lerr
	}
	fmt.Fprintf(os.Stderr, "elsaserve: drained (mean batch size %.2f)\n", srv.Metrics().MeanBatchSize())
	return nil
}
