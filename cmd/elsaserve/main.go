// Command elsaserve runs the ELSA attention service: a long-running HTTP
// server that coalesces concurrent attention requests into micro-batches
// (the software analogue of the accelerator's batch-level parallelism,
// §IV-D), reuses calibrated engines across requests, and exposes
// Prometheus-format runtime metrics.
//
// Usage:
//
//	elsaserve [-addr :8080] [-batch-window 2ms] [-max-batch 64]
//	          [-queue 256] [-workers 0] [-timeout 30s]
//
// Endpoints:
//
//	POST /v1/attend   one Q/K/V attention op with degree-of-approximation p
//	GET  /v1/healthz  liveness plus resident engine count
//	GET  /v1/metrics  Prometheus text-format counters and histograms
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops, queued
// micro-batches are dispatched and drained, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"elsa/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	window := flag.Duration("batch-window", 2*time.Millisecond, "micro-batch coalescing window")
	maxBatch := flag.Int("max-batch", 64, "dispatch a batch early at this many ops")
	queue := flag.Int("queue", 256, "bounded scheduler queue; overflow answers 429")
	workers := flag.Int("workers", 0, "attention workers per batch (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request queue+compute deadline")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	if err := run(*addr, *window, *maxBatch, *queue, *workers, *timeout, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "elsaserve:", err)
		os.Exit(1)
	}
}

func run(addr string, window time.Duration, maxBatch, queue, workers int, timeout, drain time.Duration) error {
	srv := serve.New(serve.Config{
		BatchWindow:    window,
		MaxBatch:       maxBatch,
		MaxQueue:       queue,
		Workers:        workers,
		RequestTimeout: timeout,
	})
	hs := &http.Server{Addr: addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "elsaserve: listening on %s (window %s, max-batch %d, queue %d)\n",
			addr, window, maxBatch, queue)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "elsaserve: shutting down, draining in-flight batches")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	if lerr := <-errc; lerr != nil && !errors.Is(lerr, http.ErrServerClosed) {
		return lerr
	}
	fmt.Fprintf(os.Stderr, "elsaserve: drained (mean batch size %.2f)\n", srv.Metrics().MeanBatchSize())
	return nil
}
