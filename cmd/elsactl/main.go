// Command elsactl is the autoscale controller for an elsaserve fleet,
// run as a sidecar next to the frontend. It polls the frontend's
// versioned cluster view (GET /v1/cluster, schema_version 1) on a fixed
// cadence, feeds the signals block — queue depth, windowed shed rate,
// batch occupancy — through a hysteresis-banded policy, and closes the
// loop through the frontend's own API:
//
//   - scale-in: a sustained idle band drains the least-loaded dynamic
//     member (POST /v1/cluster/drain); its sessions live-migrate away
//     and the worker can be retired.
//   - rebalance: an under-loaded active member (typically a fresh
//     joiner) attracts its fair share of pinned sessions
//     (POST /v1/cluster/rebalance).
//   - scale-out: a sustained hot band is printed as advice — elsactl
//     cannot launch workers; the operator (or a wrapper watching
//     stdout) starts one with -join and it self-registers.
//
// Usage:
//
//	elsactl -url http://frontend:8080 [-interval 2s] [-once] [-dry-run]
//	        [-scale-out-queue 16] [-scale-out-shed-rate 0.5]
//	        [-scale-in-queue 1] [-hold 3] [-cooldown 5] [-min-members 1]
//
// -once performs a single poll-decide-act cycle and exits 0 when the
// fleet needs nothing, making it cron- and script-friendly; -dry-run
// prints every decision without acting. The same controller can run
// in-process instead via elsaserve's -autoscale flag; elsactl is the
// deployment where the control loop must survive frontend restarts or
// be driven out-of-band.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"elsa/internal/serve/autoscale"
)

func main() {
	url := flag.String("url", "", "frontend base URL to control (required)")
	interval := flag.Duration("interval", 2*time.Second, "polling cadence")
	once := flag.Bool("once", false, "one poll-decide-act cycle, then exit")
	dryRun := flag.Bool("dry-run", false, "print decisions without draining or rebalancing")
	var cfg autoscale.Config
	flag.Int64Var(&cfg.ScaleOutQueue, "scale-out-queue", 0, "queue depth at or above which a snapshot is hot (default 16)")
	flag.Float64Var(&cfg.ScaleOutShedRate, "scale-out-shed-rate", 0, "windowed shed rate (events/s) at or above which a snapshot is hot (default 0.5)")
	flag.Int64Var(&cfg.ScaleInQueue, "scale-in-queue", 0, "queue depth at or below which an unshedding snapshot is cold (default 1)")
	flag.IntVar(&cfg.HoldSteps, "hold", 0, "consecutive snapshots a band must hold before advice fires (default 3)")
	flag.IntVar(&cfg.CooldownSteps, "cooldown", 0, "snapshots to suppress further advice after one fires (default 5)")
	flag.IntVar(&cfg.MinMembers, "min-members", 0, "never drain below this many active members (default 1)")
	flag.Parse()

	if *url == "" {
		fmt.Fprintln(os.Stderr, "elsactl: -url is required")
		flag.Usage()
		os.Exit(2)
	}

	ctl := autoscale.NewController(*url)
	ctl.Policy = autoscale.New(cfg)
	ctl.Interval = *interval
	ctl.DryRun = *dryRun
	ctl.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "elsactl: "+format+"\n", args...)
	}
	ctl.OnScaleOut = func(adv autoscale.Advice) {
		// Stdout, one parseable line: wrappers watch for this.
		fmt.Printf("scale-out %s\n", adv.Reason)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *once {
		adv, err := ctl.Step(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "elsactl:", err)
			os.Exit(1)
		}
		fmt.Printf("advice: %s\n", adv)
		return
	}

	fmt.Fprintf(os.Stderr, "elsactl: controlling %s every %s (policy %+v)\n", *url, ctl.Interval, ctl.Policy.Config())
	ctl.Run(ctx) //nolint:errcheck // only returns ctx.Err at shutdown
}
