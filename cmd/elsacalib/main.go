// Command elsacalib runs the paper's two calibration procedures and prints
// the learned constants:
//
//   - θ_bias calibration (§III-B): the percentile of the SRP angular
//     estimator's error subtracted so the corrected estimator
//     underestimates angles in a chosen fraction of cases (the paper
//     reports 0.127 at d = k = 64, 80th percentile);
//   - layer-threshold learning (§III-E, Fig 6): the per-layer candidate
//     selection threshold for a sweep of the degree-of-approximation
//     hyperparameter p.
//
// Usage:
//
//	elsacalib [-d 64] [-k 64] [-percentile 80] [-samples 4000] [-dataset SQuADv1.1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"elsa/internal/attention"
	"elsa/internal/srp"
	"elsa/internal/workload"
)

func main() {
	d := flag.Int("d", 64, "vector dimension")
	k := flag.Int("k", 64, "hash bits")
	percentile := flag.Float64("percentile", srp.DefaultBiasPercentile, "bias percentile")
	samples := flag.Int("samples", 4000, "calibration sample pairs")
	dataset := flag.String("dataset", "SQuADv1.1", "workload for threshold learning")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*d, *k, *percentile, *samples, *dataset, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "elsacalib:", err)
		os.Exit(1)
	}
}

func run(d, k int, percentile float64, samples int, dsName string, seed int64) error {
	rng := rand.New(rand.NewSource(seed))

	fmt.Printf("== θ_bias calibration (d=%d, k=%d, %g-th percentile, %d samples) ==\n",
		d, k, percentile, samples)
	for _, kind := range []srp.ProjectionKind{srp.Orthogonal, srp.Gaussian} {
		cal, err := srp.CalibrateBias(d, k, kind, percentile, samples, rng)
		if err != nil {
			return err
		}
		fmt.Printf("%-11s %s\n", kind, cal)
	}
	if d == 64 && k == 64 {
		fmt.Printf("paper reports θ_bias = %.3f for this configuration\n", srp.PaperBiasD64K64)
	}

	var ds workload.Dataset
	found := false
	for _, cand := range workload.AllDatasets() {
		if cand.Name == dsName {
			ds, found = cand, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown dataset %q", dsName)
	}

	fmt.Printf("\n== layer thresholds on %s (Fig 6 procedure) ==\n", ds.Name)
	fmt.Printf("%6s %12s %10s\n", "p", "threshold", "queries")
	for _, p := range []float64{0.5, 1, 2, 4, 8} {
		tt, err := attention.NewThresholdTrainer(p, attention.DefaultScale(d))
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			inst := ds.Generate(rng, d)
			if err := tt.Observe(inst.Q, inst.K); err != nil {
				return err
			}
		}
		thr, err := tt.Threshold()
		if err != nil {
			return err
		}
		fmt.Printf("%6.1f %12.4f %10d\n", p, thr, tt.Count())
	}
	return nil
}
