// Command elsarun executes a single self-attention operation — exact,
// approximate, and on the simulated accelerator — and prints candidates,
// fidelity, cycles, bottlenecks and energy. It is the quickest way to see
// the whole ELSA stack end to end.
//
// Usage:
//
//	elsarun [-n 256] [-d 64] [-p 1.0] [-dataset SQuADv1.1] [-quantized] [-seed 1]
//	elsarun -url http://localhost:8080 [-client me] [-priority batch] ...
//
// With -url the op is sent to a running elsaserve instance through the
// serve/client package (v1 envelope, quota identity, priority class)
// instead of running locally; the simulator and energy model do not
// apply remotely.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"elsa"
	"elsa/internal/attention"
	"elsa/internal/elsasim"
	"elsa/internal/energy"
	"elsa/internal/stats"
	"elsa/internal/tensor"
	"elsa/internal/workload"
	"elsa/serve/client"
)

func main() {
	n := flag.Int("n", 256, "number of input entities (rows of Q/K/V)")
	d := flag.Int("d", 64, "head dimension")
	p := flag.Float64("p", 1.0, "degree of approximation (0 = exact)")
	dataset := flag.String("dataset", "SQuADv1.1", "synthetic workload: SQuADv1.1|SQuADv2.0|RACE|IMDB|MovieLens-1M")
	quantized := flag.Bool("quantized", false, "run with the accelerator's fixed-point numerics")
	causal := flag.Bool("causal", false, "decoder-style causal masking (query i sees keys 0..i)")
	seed := flag.Int64("seed", 1, "random seed")
	url := flag.String("url", "", "run the op on this elsaserve instance instead of locally")
	clientID := flag.String("client", "elsarun", "client_id for the server's per-client quota (with -url)")
	priority := flag.String("priority", "", "priority class: interactive|batch|background (with -url)")
	flag.Parse()

	var err error
	if *url != "" {
		err = runRemote(*url, *clientID, *priority, *n, *d, *p, *dataset, *quantized, *seed)
	} else {
		err = run(*n, *d, *p, *dataset, *quantized, *causal, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "elsarun:", err)
		os.Exit(1)
	}
}

// runRemote generates the same workload and ships the op to elsaserve,
// letting the server calibrate the threshold for p.
func runRemote(url, clientID, priority string, n, d int, p float64, dsName string, quantized bool, seed int64) error {
	ds, err := findDataset(dsName)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	inst := ds.GenerateLen(rng, d, n)

	c := client.New(url,
		client.WithClientID(clientID),
		client.WithPriority(priority),
		client.WithRetries(3))
	fmt.Printf("ELSA remote run: %s n=%d d=%d p=%g dataset=%s quantized=%v client=%s\n",
		url, n, d, p, ds.Name, quantized, clientID)
	res, err := c.Attend(context.Background(), matRows(inst.Q), matRows(inst.K), matRows(inst.V),
		client.AttendOptions{
			Overrides: elsaOverrides(p),
			HeadDim:   d,
			Seed:      seed,
			Quantized: quantized,
		})
	if err != nil {
		return err
	}
	fmt.Printf("threshold: p=%g t=%.4f (calibrated over %d queries)\n",
		res.Threshold.P, res.Threshold.T, res.Threshold.Queries)
	fmt.Printf("candidates: %.1f%% of key-query pairs, %d fallback queries\n",
		100*res.CandidateFraction, res.FallbackQueries)
	fmt.Printf("dispatched in a micro-batch of %d op(s); %d context rows returned\n",
		res.BatchSize, len(res.Context))
	return nil
}

func findDataset(name string) (workload.Dataset, error) {
	for _, cand := range workload.AllDatasets() {
		if cand.Name == name {
			return cand, nil
		}
	}
	return workload.Dataset{}, fmt.Errorf("unknown dataset %q", name)
}

// matRows converts a dense matrix to the row-slice form the HTTP API
// takes.
func matRows(m *tensor.Matrix) [][]float32 {
	rows := make([][]float32, m.Rows)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

// elsaOverrides expresses the -p flag as the library-wide per-op
// override struct; the server resolves it to a calibrated threshold.
func elsaOverrides(p float64) elsa.Overrides { return elsa.Overrides{P: p} }

func run(n, d int, p float64, dsName string, quantized, causal bool, seed int64) error {
	var ds workload.Dataset
	found := false
	for _, cand := range workload.AllDatasets() {
		if cand.Name == dsName {
			ds, found = cand, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown dataset %q", dsName)
	}

	rng := rand.New(rand.NewSource(seed))
	eng, err := attention.NewEngine(attention.Config{D: d, Quantized: quantized, Seed: seed})
	if err != nil {
		return err
	}
	cfg := elsasim.Default()
	cfg.D = d
	cfg.K = eng.Config().K
	if n > cfg.N {
		cfg.N = n
	}
	sim, err := elsasim.New(cfg, eng)
	if err != nil {
		return err
	}

	fmt.Printf("ELSA single-op run: n=%d d=%d k=%d p=%g dataset=%s quantized=%v causal=%v\n",
		n, d, eng.Config().K, p, ds.Name, quantized, causal)
	fmt.Printf("calibrated θ_bias = %.4f (paper: 0.127 for d=k=64)\n", eng.Bias())

	// Learn the layer threshold on a calibration invocation.
	thr := attention.ExactThresholdNoApprox
	if p > 0 {
		calib := ds.GenerateLen(rng, d, n)
		tt, err := attention.NewThresholdTrainer(p, eng.Config().Scale)
		if err != nil {
			return err
		}
		if err := tt.Observe(calib.Q, calib.K); err != nil {
			return err
		}
		if thr, err = tt.Threshold(); err != nil {
			return err
		}
		fmt.Printf("learned threshold t = %.4f from %d calibration queries\n", thr, n)
	}

	inst := ds.GenerateLen(rng, d, n)
	var res *elsasim.Result
	if causal {
		res, err = sim.RunCausal(inst.Q, inst.K, inst.V, thr)
	} else {
		res, err = sim.Run(inst.Q, inst.K, inst.V, thr)
	}
	if err != nil {
		return err
	}

	fidelityLine := ""
	if causal {
		// Fidelity vs the causal reference.
		want := attention.ExactCausal(inst.Q, inst.K, inst.V, eng.Config().Scale)
		var cosSum float64
		for i := 0; i < n; i++ {
			cosSum += cosineRows(want.Row(i), res.Attention.Output.Row(i))
		}
		fidelityLine = fmt.Sprintf("fidelity vs exact-causal: cos=%.4f", cosSum/float64(n))
	} else {
		exactOut, exactScores := attention.ExactWithScores(inst.Q, inst.K, inst.V, eng.Config().Scale)
		fid, err := attention.Compare(exactOut, exactScores, res.Attention)
		if err != nil {
			return err
		}
		fidelityLine = fmt.Sprintf("fidelity vs exact: %s", fid)
	}

	fmt.Printf("\n-- approximation --\n")
	fmt.Printf("candidates: %d of %d key-query pairs (%.1f%%), %d fallback queries\n",
		res.TotalCandidates, int64(n)*int64(n),
		100*res.Attention.CandidateFraction(n), res.Attention.FallbackQueries)
	fmt.Println(fidelityLine)

	fmt.Printf("\n-- accelerator timing (%.2g GHz) --\n", cfg.FreqHz/1e9)
	fmt.Printf("preprocess %d + execute %d + drain %d = %d cycles (%.3g s)\n",
		res.PreprocessCycles, res.ExecutionCycles, res.DrainCycles,
		res.TotalCycles(), res.Seconds(cfg.FreqHz))
	fmt.Printf("per-query bottlenecks: compute=%d scan=%d hash=%d divide=%d; max queue depth %d\n",
		res.Bottlenecks.Compute, res.Bottlenecks.Scan, res.Bottlenecks.Hash,
		res.Bottlenecks.Divide, res.MaxQueueDepth)
	lat := make([]float64, len(res.PerQueryCycles))
	for i, c := range res.PerQueryCycles {
		lat[i] = float64(c)
	}
	fmt.Printf("per-query service cycles: %s\n", stats.Summarize(lat))

	bd, err := energy.Estimate(res.Activity, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("\n-- energy --\n")
	fmt.Printf("total %.3g J, average power %.3f W (peak %.2f W)\n",
		bd.TotalJ(), bd.AveragePowerWatts(), energy.PeakPowerWatts())
	for _, m := range bd.Modules {
		fmt.Printf("  %-28s %8.3g J (busy %4.1f%%)\n", m.Name, m.TotalJ(), 100*m.BusyFraction)
	}
	return nil
}

// cosineRows is a local cosine similarity over float32 rows.
func cosineRows(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
