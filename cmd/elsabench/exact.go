package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"elsa/internal/attention"
	"elsa/internal/experiments"
	"elsa/internal/tensor"
	"elsa/internal/workload"
)

// ExactRow is one {workload, backend} measurement of the exact attention
// backends: the scores reference (n×n materialization) against the
// linear-scan oracle (online softmax, O(d) state). The rows carry both
// the performance trajectory (batch ns/op, streaming tokens/s) and the
// two properties the backend exists for — a memory ceiling (bytes/op must
// not include an n×n score matrix) and cross-backend agreement within the
// pinned differential bound.
type ExactRow struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	D        int    `json:"d"`
	Backend  string `json:"backend"`
	// BatchNsPerOp times one full batch attend over the instance.
	BatchNsPerOp float64 `json:"batch_ns_per_op"`
	// BytesPerOp is heap allocated per batch attend — the memory-ceiling
	// row: the scores backend allocates Θ(n_q·n), the linear scan O(n_q·d).
	BytesPerOp uint64 `json:"bytes_per_op"`
	// StreamTokensPerSec is decode throughput: tokens appended one by one,
	// each followed by one query over the grown prefix.
	StreamTokensPerSec float64 `json:"stream_tokens_per_sec"`
	// MaxULP is the worst elementwise float32 ULP distance between the two
	// backends' batch outputs on this instance; BoundOK reports whether
	// every element sat inside the pinned differential bound
	// (attention.WithinLinearScanBound). Stamped on both backends' rows.
	MaxULP  uint32 `json:"max_ulp"`
	BoundOK bool   `json:"bound_ok"`
}

// exactWorkloads are the instances the exact family measures: the
// ViT-style patch grid (fixed 196 tokens, 2D locality) and a capped
// long-document prefix (the linear scan's home regime). The cap keeps a
// bench run in seconds; the memory-ceiling gap already spans ~64x at
// n=1024.
func exactWorkloads(opt experiments.Options, d int) []struct {
	name string
	inst workload.Instance
} {
	rng := rand.New(rand.NewSource(opt.Seed))
	longDoc := workload.LongDoc4K
	longDoc.Len = 1024
	return []struct {
		name string
		inst workload.Instance
	}{
		{workload.ViTBase16.Name, workload.ViTBase16.Generate(rng, d)},
		{longDoc.Name, longDoc.Generate(rng, d)},
	}
}

// exactRows measures both exact backends on both workload families.
func exactRows(opt experiments.Options) ([]ExactRow, error) {
	const d = 64
	scale := attention.DefaultScale(d)
	var rows []ExactRow
	for _, w := range exactWorkloads(opt, d) {
		inst := w.inst
		n := inst.RealLen

		// Cross-backend agreement on this instance, stamped on both rows.
		scoresOut, _ := attention.ExactWithScores(inst.Q, inst.K, inst.V, scale)
		scanOut := attention.ExactLinearScan(inst.Q, inst.K, inst.V, scale)
		maxULP, boundOK := exactAgreement(scoresOut, scanOut, inst.V)

		for _, backend := range []string{"scores", "linear-scan"} {
			attend := func() *tensor.Matrix {
				if backend == "scores" {
					out, _ := attention.ExactWithScores(inst.Q, inst.K, inst.V, scale)
					return out
				}
				return attention.ExactLinearScan(inst.Q, inst.K, inst.V, scale)
			}
			ns, bytesPerOp := timeAndAlloc(attend)
			tps, err := exactStreamRate(opt, inst, d, backend)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ExactRow{
				Workload: w.name, N: n, D: d, Backend: backend,
				BatchNsPerOp: ns, BytesPerOp: bytesPerOp,
				StreamTokensPerSec: tps,
				MaxULP:             maxULP, BoundOK: boundOK,
			})
		}
	}
	return rows, nil
}

// exactAgreement compares the two backends' outputs under the pinned
// differential bound.
func exactAgreement(a, b, v *tensor.Matrix) (maxULP uint32, boundOK bool) {
	maxAbsV := 0.0
	for _, x := range v.Data {
		if ax := math.Abs(float64(x)); ax > maxAbsV {
			maxAbsV = ax
		}
	}
	absTol := attention.LinearScanTolerance(maxAbsV)
	boundOK = true
	for i := range a.Data {
		if ulp := attention.ULPDiff32(a.Data[i], b.Data[i]); ulp > maxULP {
			maxULP = ulp
		}
		if !attention.WithinLinearScanBound(a.Data[i], b.Data[i], absTol) {
			boundOK = false
		}
	}
	return maxULP, boundOK
}

// timeAndAlloc runs f repeatedly, returning mean wall ns/op and heap
// bytes allocated per op (single-goroutine TotalAlloc delta).
func timeAndAlloc(f func() *tensor.Matrix) (nsPerOp float64, bytesPerOp uint64) {
	f() // warm-up outside the measurement
	const reps = 3
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return float64(wall.Nanoseconds()) / reps, (ms1.TotalAlloc - ms0.TotalAlloc) / reps
}

// exactStreamRate replays the instance as a decode session: append token
// i, then answer query i over the prefix so far, through the selected
// exact backend. LongDoc instances are causal by construction, so the
// replay matches how a serving session would consume them.
func exactStreamRate(opt experiments.Options, inst workload.Instance, d int, backend string) (float64, error) {
	eng, err := attention.NewEngine(attention.Config{D: d, Seed: opt.Seed})
	if err != nil {
		return 0, err
	}
	st := eng.NewStream(inst.RealLen)
	dst := make([]float32, d)
	start := time.Now()
	for i := 0; i < inst.RealLen; i++ {
		if err := st.Append(inst.K.Row(i), inst.V.Row(i)); err != nil {
			return 0, err
		}
		if backend == "scores" {
			dst, _, err = st.QueryWith(dst, inst.Q.Row(i), attention.ExactThresholdNoApprox)
		} else {
			dst, _, err = st.QueryLinearScan(dst, inst.Q.Row(i))
		}
		if err != nil {
			return 0, err
		}
	}
	return float64(inst.RealLen) / time.Since(start).Seconds(), nil
}

// loadExactRows reads the "exact" family from a committed serving
// snapshot; snapshots predating the family simply lack the key.
func loadExactRows(path string) ([]ExactRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload servingSnapshot
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return payload.Exact, nil
}

// compareExactPerf gates the exact-backend trajectory between two
// committed snapshots: per {workload, backend}, streaming tokens/s must
// not regress past maxRegress, the memory ceiling must hold (a
// linear-scan row may never allocate as much as its scores counterpart
// on long instances), and every row must still sit inside the pinned
// differential bound. Snapshots without the family skip the gate.
func compareExactPerf(newPath, baselinePath string, maxRegress float64) error {
	rows, err := loadExactRows(newPath)
	if err != nil {
		return err
	}
	base, err := loadExactRows(baselinePath)
	if err != nil {
		return err
	}
	if len(rows) == 0 || len(base) == 0 {
		fmt.Printf("exact backend rows absent from %s or %s; skipping exact gate\n", newPath, baselinePath)
		return nil
	}
	type point struct {
		Workload string
		Backend  string
	}
	old := make(map[point]ExactRow, len(base))
	for _, r := range base {
		old[point{r.Workload, r.Backend}] = r
	}
	scoresBytes := make(map[string]uint64, len(rows))
	for _, r := range rows {
		if r.Backend == "scores" {
			scoresBytes[r.Workload] = r.BytesPerOp
		}
	}
	var failures []string
	for _, r := range rows {
		if !r.BoundOK {
			failures = append(failures,
				fmt.Sprintf("%s/%s: backends disagree beyond the pinned differential bound (max %d ULP)",
					r.Workload, r.Backend, r.MaxULP))
		}
		if r.Backend == "linear-scan" {
			if sb, ok := scoresBytes[r.Workload]; ok && r.BytesPerOp >= sb {
				failures = append(failures,
					fmt.Sprintf("%s: linear-scan bytes/op %d >= scores %d — memory ceiling lost",
						r.Workload, r.BytesPerOp, sb))
			}
		}
		prev, ok := old[point{r.Workload, r.Backend}]
		if !ok || prev.StreamTokensPerSec <= 0 {
			continue
		}
		ratio := r.StreamTokensPerSec / prev.StreamTokensPerSec
		fmt.Printf("exact %-12s %-12s: %8.0f tokens/s vs baseline %8.0f (%.2fx)\n",
			r.Workload, r.Backend, r.StreamTokensPerSec, prev.StreamTokensPerSec, ratio)
		if ratio < 1-maxRegress {
			failures = append(failures,
				fmt.Sprintf("%s/%s: tokens/s %.0f -> %.0f (-%.0f%%)",
					r.Workload, r.Backend, prev.StreamTokensPerSec, r.StreamTokensPerSec, 100*(1-ratio)))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("exact backend gate failed vs %s:\n  %s", baselinePath, joinLines(failures))
	}
	fmt.Printf("exact backends OK: bound holds, memory ceiling holds, no >%.0f%% tokens/s regression vs %s\n",
		100*maxRegress, baselinePath)
	return nil
}

func runExact(opt experiments.Options) error {
	rows, err := exactRows(opt)
	if err != nil {
		return err
	}
	header("exact backends: scores reference vs linear-scan oracle")
	fmt.Printf("%-12s %6s %4s %-12s %12s %12s %10s %8s %6s\n",
		"workload", "n", "d", "backend", "batch-ns/op", "bytes/op", "tokens/s", "max-ulp", "bound")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %4d %-12s %12.0f %12d %10.0f %8d %6v\n",
			r.Workload, r.N, r.D, r.Backend, r.BatchNsPerOp, r.BytesPerOp,
			r.StreamTokensPerSec, r.MaxULP, r.BoundOK)
	}
	fmt.Println("(bytes/op is the memory ceiling: the scores backend materializes n_q x n,")
	fmt.Println(" the linear scan keeps O(d) state per query; max-ulp/bound is the pinned")
	fmt.Println(" differential agreement the fuzz suite enforces elementwise)")

	abl, err := experiments.AblateSoftmaxExp(opt)
	if err != nil {
		return err
	}
	header("ablation: cheap softmax exponential on the linear scan (arXiv 2111.10770)")
	fmt.Printf("%-12s %6s %4s %12s %12s %12s %9s %12s\n",
		"workload", "n", "d", "mean-cosine", "mean-abs", "max-abs", "max-ulp", "worst-exp")
	for _, r := range abl {
		fmt.Printf("%-12s %6d %4d %12.5f %12.2g %12.2g %9d %11.2f%%\n",
			r.Workload, r.N, r.D, r.MeanCosine, r.MeanAbsErr, r.MaxAbsErr, r.MaxULP, 100*r.MaxRelExpErr)
	}
	fmt.Println("(a Schraudolph exponential with a few percent worst error replaces math.Exp")
	fmt.Println(" inside the scan; the normalizer absorbs most of the correlated per-weight")
	fmt.Println(" error, the cosine row is the damage that survives — the LUT-softmax bet")
	fmt.Println(" the literature makes)")
	return nil
}
