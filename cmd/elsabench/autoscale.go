package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"elsa"
	"elsa/internal/experiments"
	"elsa/internal/serve"
	"elsa/internal/serve/autoscale"
	"elsa/internal/serve/servetest"
	"elsa/serve/client"
)

// AutoscaleRow is one autoscale-loop measurement. Three scenario
// families share the row shape:
//
//   - "rebalance": a joiner arrives in a loaded fleet and the controller
//     migrates sessions toward it — Migrations counts the moved
//     sessions, ConvergeMS the wall time from the joiner activating to
//     the policy going quiet (fleet balanced).
//   - "mirror-sync" / "mirror-batched": the steady-state cost of the
//     frontend's shadow mirror on the session append path, inline vs
//     batched+async — MirrorNsPerToken is replay nanoseconds per
//     appended token, the number DESIGN.md §14 bounds.
type AutoscaleRow struct {
	Scenario   string  `json:"scenario"`
	Sessions   int     `json:"sessions"`
	Tokens     int     `json:"tokens,omitempty"`
	ConvergeMS float64 `json:"converge_ms,omitempty"`
	Migrations int     `json:"migrations,omitempty"`
	// MirrorNsPerToken is mirror-replay wall nanos per token appended
	// onto a shadowed session (0 when the scenario measures no mirrors).
	MirrorNsPerToken float64 `json:"mirror_ns_per_token,omitempty"`
}

func autoscaleFront(syncMirror bool) serve.Config {
	return serve.Config{
		BatchWindow:         time.Millisecond,
		Replicas:            -1, // dispatch-only: sessions pin to workers
		WorkerProbeInterval: 25 * time.Millisecond,
		RequestTimeout:      10 * time.Second,
		SyncMirror:          syncMirror,
	}
}

// autoscaleRows measures the closed autoscale loop: rebalance
// convergence after a joiner, and the shadow-mirror append overhead in
// both replay modes.
func autoscaleRows(opt experiments.Options) ([]AutoscaleRow, error) {
	sessions := 4 * opt.Instances
	if sessions > 48 {
		sessions = 48
	}
	reb, err := rebalanceRow(opt, sessions)
	if err != nil {
		return nil, err
	}
	rows := []AutoscaleRow{reb}
	for _, sync := range []bool{true, false} {
		row, err := mirrorRow(opt, 8, 16*opt.Instances, sync)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// rebalanceRow loads a one-worker fleet with pinned sessions, joins a
// second worker, and lets the autoscale controller settle the fleet.
func rebalanceRow(opt experiments.Options, sessions int) (AutoscaleRow, error) {
	cl := servetest.NewDynamicCluster(autoscaleFront(false))
	defer cl.Close()
	if _, err := cl.AddWorker(serve.Config{BatchWindow: time.Millisecond, Replicas: 1}, 25*time.Millisecond, 5*time.Second); err != nil {
		return AutoscaleRow{}, err
	}

	const dim = 32
	ctx := context.Background()
	c := client.New(cl.URL())
	rng := rand.New(rand.NewSource(opt.Seed))
	for i := 0; i < sessions; i++ {
		thr := elsa.Threshold{P: 1, T: 0.3}
		sess, err := c.NewSession(ctx, client.SessionOptions{
			Overrides: elsa.Overrides{Thr: &thr},
			HeadDim:   dim,
			Seed:      opt.Seed,
		})
		if err != nil {
			return AutoscaleRow{}, fmt.Errorf("autoscale session %d: %w", i, err)
		}
		if _, err := sess.Append(ctx, benchVec(rng, dim), benchVec(rng, dim)); err != nil {
			return AutoscaleRow{}, fmt.Errorf("autoscale append %d: %w", i, err)
		}
	}

	joiner, err := cl.AddWorker(serve.Config{BatchWindow: time.Millisecond, Replicas: 1}, 25*time.Millisecond, 5*time.Second)
	if err != nil {
		return AutoscaleRow{}, err
	}

	// Drive the controller exactly as elsactl would, on a tight cadence,
	// until the policy goes quiet: balanced fleet, nothing left to move.
	// MinMembers 2 keeps the idle-band scale-in from draining the joiner
	// right back out from under the measurement.
	ctl := autoscale.NewController(cl.URL())
	ctl.Policy = autoscale.New(autoscale.Config{HoldSteps: 3, CooldownSteps: 1, MinMembers: 2})
	moved := 0
	start := time.Now()
	deadline := start.Add(30 * time.Second)
	quiet := 0
	for quiet < 3 && time.Now().Before(deadline) {
		adv, err := ctl.Step(ctx)
		if err != nil {
			return AutoscaleRow{}, fmt.Errorf("autoscale step: %w", err)
		}
		if adv.Action == autoscale.ActionNone {
			quiet++
		} else {
			quiet = 0
		}
		time.Sleep(2 * time.Millisecond)
	}
	converge := time.Since(start)

	view, err := c.Cluster(ctx)
	if err != nil {
		return AutoscaleRow{}, err
	}
	for _, m := range view.Members {
		if m.Addr == joiner.URL() {
			moved = m.PinnedSessions
		}
	}
	return AutoscaleRow{
		Scenario:   "rebalance",
		Sessions:   sessions,
		ConvergeMS: float64(converge.Microseconds()) / 1e3,
		Migrations: moved,
	}, nil
}

// mirrorRow measures the frontend's shadow-mirror replay cost per
// appended token with sessions pinned to a remote worker.
func mirrorRow(opt experiments.Options, sessions, tokensPer int, syncMirror bool) (AutoscaleRow, error) {
	cl := servetest.NewDynamicCluster(autoscaleFront(syncMirror))
	defer cl.Close()
	if _, err := cl.AddWorker(serve.Config{BatchWindow: time.Millisecond, Replicas: 1}, 25*time.Millisecond, 5*time.Second); err != nil {
		return AutoscaleRow{}, err
	}

	const dim = 32
	ctx := context.Background()
	c := client.New(cl.URL())
	rng := rand.New(rand.NewSource(opt.Seed))
	handles := make([]*client.Session, sessions)
	for i := range handles {
		thr := elsa.Threshold{P: 1, T: 0.3}
		sess, err := c.NewSession(ctx, client.SessionOptions{
			Overrides: elsa.Overrides{Thr: &thr},
			HeadDim:   dim,
			Seed:      opt.Seed,
		})
		if err != nil {
			return AutoscaleRow{}, fmt.Errorf("mirror session %d: %w", i, err)
		}
		handles[i] = sess
	}
	for s := 0; s < tokensPer; s++ {
		for _, sess := range handles {
			if _, err := sess.Append(ctx, benchVec(rng, dim), benchVec(rng, dim)); err != nil {
				return AutoscaleRow{}, fmt.Errorf("mirror append: %w", err)
			}
		}
	}
	// Exporting forces every pending batched replay to flush, so the
	// counters cover all appended tokens in both modes.
	for _, sess := range handles {
		if _, err := sess.Export(ctx); err != nil {
			return AutoscaleRow{}, fmt.Errorf("mirror flush export: %w", err)
		}
	}

	replayed, nanos := cl.Frontend.Metrics().MirrorReplay()
	scenario := "mirror-batched"
	if syncMirror {
		scenario = "mirror-sync"
	}
	row := AutoscaleRow{
		Scenario: scenario,
		Sessions: sessions,
		Tokens:   int(replayed),
	}
	if replayed > 0 {
		row.MirrorNsPerToken = float64(nanos) / float64(replayed)
	}
	return row, nil
}

// loadAutoscaleRows reads the "autoscale" family from a committed serving
// snapshot; snapshots predating the family simply lack the key.
func loadAutoscaleRows(path string) ([]AutoscaleRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload servingSnapshot
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return payload.Autoscale, nil
}

// compareAutoscalePerf gates the autoscale trajectory: per scenario,
// rebalance convergence must not slow by more than maxRegress, and the
// batched mirror's ns/token must not grow by more than maxRegress. A
// snapshot without autoscale rows (predating the family) skips the gate.
func compareAutoscalePerf(newPath, baselinePath string, maxRegress float64) error {
	rows, err := loadAutoscaleRows(newPath)
	if err != nil {
		return err
	}
	base, err := loadAutoscaleRows(baselinePath)
	if err != nil {
		return err
	}
	if len(rows) == 0 || len(base) == 0 {
		fmt.Printf("autoscale rows absent from %s or %s; skipping autoscale gate\n", newPath, baselinePath)
		return nil
	}
	old := make(map[string]AutoscaleRow, len(base))
	for _, r := range base {
		old[r.Scenario] = r
	}
	var regressions []string
	for _, r := range rows {
		prev, ok := old[r.Scenario]
		if !ok {
			continue
		}
		switch {
		case r.ConvergeMS > 0 && prev.ConvergeMS > 0:
			ratio := r.ConvergeMS / prev.ConvergeMS
			fmt.Printf("autoscale %-14s: converge %8.1fms vs baseline %8.1fms (%.2fx)\n",
				r.Scenario, r.ConvergeMS, prev.ConvergeMS, ratio)
			if ratio > 1+maxRegress {
				regressions = append(regressions, fmt.Sprintf(
					"%s: converge_ms %.1f -> %.1f (+%.0f%%)", r.Scenario, prev.ConvergeMS, r.ConvergeMS, 100*(ratio-1)))
			}
		case r.MirrorNsPerToken > 0 && prev.MirrorNsPerToken > 0:
			ratio := r.MirrorNsPerToken / prev.MirrorNsPerToken
			fmt.Printf("autoscale %-14s: mirror %8.0fns/token vs baseline %8.0fns/token (%.2fx)\n",
				r.Scenario, r.MirrorNsPerToken, prev.MirrorNsPerToken, ratio)
			if r.Scenario == "mirror-batched" && ratio > 1+maxRegress {
				regressions = append(regressions, fmt.Sprintf(
					"%s: mirror_ns_per_token %.0f -> %.0f (+%.0f%%)", r.Scenario, prev.MirrorNsPerToken, r.MirrorNsPerToken, 100*(ratio-1)))
			}
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("autoscale loop regressed >%.0f%% vs %s:\n  %s",
			100*maxRegress, baselinePath, joinLines(regressions))
	}
	fmt.Printf("autoscale OK: convergence and mirror cost within %.0f%% of %s\n", 100*maxRegress, baselinePath)
	return nil
}

func runAutoscale(opt experiments.Options) error {
	rows, err := autoscaleRows(opt)
	if err != nil {
		return err
	}
	header("autoscale: closed-loop convergence and shadow-mirror cost")
	fmt.Printf("%-14s %9s %8s %13s %11s %16s\n",
		"scenario", "sessions", "tokens", "converge(ms)", "migrations", "mirror ns/token")
	for _, r := range rows {
		fmt.Printf("%-14s %9d %8d %13.1f %11d %16.0f\n",
			r.Scenario, r.Sessions, r.Tokens, r.ConvergeMS, r.Migrations, r.MirrorNsPerToken)
	}
	fmt.Println("(rebalance: sessions migrate toward a fresh joiner until the policy goes")
	fmt.Println(" quiet; mirror rows compare inline vs batched/async shadow-mirror replay")
	fmt.Println(" on the append path — the batched mode is the serving default)")
	return nil
}
