package main

import (
	"fmt"
	"math/rand"
	"time"

	"elsa"
	"elsa/internal/experiments"
	"elsa/internal/tensor"
	"elsa/internal/workload"
)

// BenchRow is one machine-readable benchmark measurement, written by the
// -json flag so successive PRs can track a BENCH_*.json performance
// trajectory.
type BenchRow struct {
	Dataset string  `json:"dataset"`
	N       int     `json:"n"`
	D       int     `json:"d"`
	P       float64 `json:"p"`
	// NsPerOp is the measured software Attend wall time per op at this
	// operating point; ExactNsPerOp is the same op with filtering off.
	NsPerOp      float64 `json:"ns_per_op"`
	ExactNsPerOp float64 `json:"exact_ns_per_op"`
	// SoftwareSpeedup is ExactNsPerOp / NsPerOp.
	SoftwareSpeedup float64 `json:"software_speedup"`
	// CandidateFraction is the mean fraction of keys the filter admitted.
	CandidateFraction float64 `json:"candidate_fraction"`
	// SimSpeedup is exact-mode simulated accelerator cycles over
	// approximate-mode cycles for the same op.
	SimSpeedup float64 `json:"sim_speedup"`
}

// rowsOf converts an internal matrix to the public [][]float32 form.
func rowsOf(m *tensor.Matrix) [][]float32 {
	out := make([][]float32, m.Rows)
	for i := range out {
		out[i] = append([]float32(nil), m.Row(i)...)
	}
	return out
}

// timeAttend measures Attend wall time per op over iters runs.
func timeAttend(eng *elsa.Engine, q, k, v [][]float32, thr elsa.Threshold, iters int) (float64, *elsa.Output, error) {
	out, err := eng.Attend(q, k, v, thr) // warm-up, and the stats sample
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := eng.Attend(q, k, v, thr); err != nil {
			return 0, nil, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), out, nil
}

// benchRows measures the software and simulated operating points that the
// perf trajectory tracks: p = 0 (exact), 1 (conservative) and 2 (moderate)
// on one representative dataset.
func benchRows(opt experiments.Options) ([]BenchRow, error) {
	const (
		n     = 256
		d     = 64
		iters = 5
	)
	rng := rand.New(rand.NewSource(opt.Seed))
	eng, err := elsa.New(elsa.Options{HeadDim: d, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	ds := workload.AllDatasets()[0]
	calib := ds.GenerateLen(rng, d, n)
	inst := ds.GenerateLen(rng, d, n)
	q, k, v := rowsOf(inst.Q), rowsOf(inst.K), rowsOf(inst.V)

	exactNs, _, err := timeAttend(eng, q, k, v, elsa.Exact(), iters)
	if err != nil {
		return nil, err
	}
	exactSim, err := eng.Simulate(q, k, v, elsa.Exact())
	if err != nil {
		return nil, err
	}

	rows := []BenchRow{{
		Dataset: ds.Name, N: n, D: d, P: 0,
		NsPerOp: exactNs, ExactNsPerOp: exactNs,
		SoftwareSpeedup: 1, CandidateFraction: 1, SimSpeedup: 1,
	}}
	for _, p := range []float64{1, 2} {
		thr, err := eng.Calibrate(p, []elsa.Sample{{Q: rowsOf(calib.Q), K: rowsOf(calib.K)}})
		if err != nil {
			return nil, err
		}
		ns, out, err := timeAttend(eng, q, k, v, thr, iters)
		if err != nil {
			return nil, err
		}
		sim, err := eng.Simulate(q, k, v, thr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BenchRow{
			Dataset: ds.Name, N: n, D: d, P: p,
			NsPerOp:           ns,
			ExactNsPerOp:      exactNs,
			SoftwareSpeedup:   exactNs / ns,
			CandidateFraction: out.CandidateFraction,
			SimSpeedup:        float64(exactSim.TotalCycles) / float64(sim.TotalCycles),
		})
	}
	return rows, nil
}

func runBench(opt experiments.Options) error {
	rows, err := benchRows(opt)
	if err != nil {
		return err
	}
	header("bench: software ns/op, candidate fraction and simulated speedup")
	fmt.Printf("%-14s %5s %5s %5s %12s %10s %11s %11s\n",
		"dataset", "n", "d", "p", "ns/op", "sw-speedup", "cand-frac", "sim-speedup")
	for _, r := range rows {
		fmt.Printf("%-14s %5d %5d %5.1f %12.0f %9.2fx %10.1f%% %10.2fx\n",
			r.Dataset, r.N, r.D, r.P, r.NsPerOp, r.SoftwareSpeedup,
			100*r.CandidateFraction, r.SimSpeedup)
	}
	return nil
}
