package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"elsa"
	"elsa/internal/experiments"
	"elsa/internal/tensor"
	"elsa/internal/workload"
)

// BenchRow is one machine-readable benchmark measurement, written by the
// -json flag so successive PRs can track a BENCH_*.json performance
// trajectory.
type BenchRow struct {
	Dataset string  `json:"dataset"`
	N       int     `json:"n"`
	D       int     `json:"d"`
	P       float64 `json:"p"`
	// NsPerOp is the measured software Attend wall time per op at this
	// operating point; ExactNsPerOp is the same op with filtering off.
	NsPerOp      float64 `json:"ns_per_op"`
	ExactNsPerOp float64 `json:"exact_ns_per_op"`
	// SoftwareSpeedup is ExactNsPerOp / NsPerOp.
	SoftwareSpeedup float64 `json:"software_speedup"`
	// CandidateFraction is the mean fraction of keys the filter admitted.
	CandidateFraction float64 `json:"candidate_fraction"`
	// SimSpeedup is exact-mode simulated accelerator cycles over
	// approximate-mode cycles for the same op.
	SimSpeedup float64 `json:"sim_speedup"`
	// TokensPerSec is the streaming-decode rate (append + query per token)
	// for the "<dataset>/decode" rows; 0 on one-shot rows.
	TokensPerSec float64 `json:"tokens_per_sec,omitempty"`
}

// rowsOf converts an internal matrix to the public [][]float32 form.
func rowsOf(m *tensor.Matrix) [][]float32 {
	out := make([][]float32, m.Rows)
	for i := range out {
		out[i] = append([]float32(nil), m.Row(i)...)
	}
	return out
}

// timeAttend measures Attend wall time per op over iters runs.
func timeAttend(eng *elsa.Engine, q, k, v [][]float32, thr elsa.Threshold, iters int) (float64, *elsa.Output, error) {
	out, err := eng.Attend(q, k, v, thr) // warm-up, and the stats sample
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := eng.Attend(q, k, v, thr); err != nil {
			return 0, nil, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), out, nil
}

// benchRows measures the software and simulated operating points that the
// perf trajectory tracks: p = 0 (exact), 1 (conservative) and 2 (moderate)
// on one representative dataset, at n = 256 and the paper's full n = 512.
func benchRows(opt experiments.Options) ([]BenchRow, error) {
	var rows []BenchRow
	for _, size := range []struct {
		n, iters int
	}{{256, 8}, {512, 5}} {
		sized, err := benchRowsAt(opt, size.n, 64, size.iters)
		if err != nil {
			return nil, err
		}
		rows = append(rows, sized...)
	}
	decode, err := benchDecodeRows(opt, 256, 64)
	if err != nil {
		return nil, err
	}
	return append(rows, decode...), nil
}

// benchDecodeRows measures autoregressive streaming decode: a prefilled
// elsa.Stream advanced one token at a time, each step one QueryWith into a
// recycled buffer (the zero-alloc decode path) plus one Append. NsPerOp is
// the per-token step time; TokensPerSec its inverse.
func benchDecodeRows(opt experiments.Options, n, d int) ([]BenchRow, error) {
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	eng, err := elsa.New(elsa.Options{HeadDim: d, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	ds := workload.AllDatasets()[0]
	calib := ds.GenerateLen(rng, d, n)
	prefill := ds.GenerateLen(rng, d, n)
	steps := ds.GenerateLen(rng, d, n) // decode-phase queries and new tokens
	const decodeSteps = 64

	runDecode := func(thr elsa.Threshold) (nsPerTok, candFrac float64, err error) {
		st := eng.NewStream(n + decodeSteps)
		for i := 0; i < n; i++ {
			if err := st.Append(prefill.K.Row(i), prefill.V.Row(i)); err != nil {
				return 0, 0, err
			}
		}
		dst := make([]float32, d)
		if dst, _, err = st.QueryWith(dst, steps.Q.Row(0), thr); err != nil { // warm-up
			return 0, 0, err
		}
		start := time.Now()
		for i := 0; i < decodeSteps; i++ {
			out, stats, err := st.QueryWith(dst, steps.Q.Row(i), thr)
			if err != nil {
				return 0, 0, err
			}
			dst = out
			candFrac += float64(stats.Candidates) / float64(st.Len())
			if err := st.Append(steps.K.Row(i), steps.V.Row(i)); err != nil {
				return 0, 0, err
			}
		}
		elapsed := float64(time.Since(start).Nanoseconds())
		return elapsed / decodeSteps, candFrac / decodeSteps, nil
	}

	var rows []BenchRow
	var exactNs float64
	for _, p := range []float64{0, 1, 2} {
		thr := elsa.Exact()
		if p > 0 {
			if thr, err = eng.Calibrate(p, []elsa.Sample{{Q: rowsOf(calib.Q), K: rowsOf(calib.K)}}); err != nil {
				return nil, err
			}
		}
		ns, frac, err := runDecode(thr)
		if err != nil {
			return nil, err
		}
		if p == 0 {
			exactNs = ns
		}
		rows = append(rows, BenchRow{
			Dataset: ds.Name + "/decode", N: n, D: d, P: p,
			NsPerOp:           ns,
			ExactNsPerOp:      exactNs,
			SoftwareSpeedup:   exactNs / ns,
			CandidateFraction: frac,
			TokensPerSec:      1e9 / ns,
		})
	}
	return rows, nil
}

func benchRowsAt(opt experiments.Options, n, d, iters int) ([]BenchRow, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	eng, err := elsa.New(elsa.Options{HeadDim: d, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	ds := workload.AllDatasets()[0]
	calib := ds.GenerateLen(rng, d, n)
	inst := ds.GenerateLen(rng, d, n)
	q, k, v := rowsOf(inst.Q), rowsOf(inst.K), rowsOf(inst.V)

	exactNs, _, err := timeAttend(eng, q, k, v, elsa.Exact(), iters)
	if err != nil {
		return nil, err
	}
	exactSim, err := eng.Simulate(q, k, v, elsa.Exact())
	if err != nil {
		return nil, err
	}

	rows := []BenchRow{{
		Dataset: ds.Name, N: n, D: d, P: 0,
		NsPerOp: exactNs, ExactNsPerOp: exactNs,
		SoftwareSpeedup: 1, CandidateFraction: 1, SimSpeedup: 1,
	}}
	for _, p := range []float64{1, 2} {
		thr, err := eng.Calibrate(p, []elsa.Sample{{Q: rowsOf(calib.Q), K: rowsOf(calib.K)}})
		if err != nil {
			return nil, err
		}
		ns, out, err := timeAttend(eng, q, k, v, thr, iters)
		if err != nil {
			return nil, err
		}
		sim, err := eng.Simulate(q, k, v, thr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BenchRow{
			Dataset: ds.Name, N: n, D: d, P: p,
			NsPerOp:           ns,
			ExactNsPerOp:      exactNs,
			SoftwareSpeedup:   exactNs / ns,
			CandidateFraction: out.CandidateFraction,
			SimSpeedup:        float64(exactSim.TotalCycles) / float64(sim.TotalCycles),
		})
	}
	return rows, nil
}

// loadBenchRows reads a previously written -json bench file (the
// {"bench": [...]} shape emitJSON produces).
func loadBenchRows(path string) ([]BenchRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload struct {
		Bench []BenchRow `json:"bench"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(payload.Bench) == 0 {
		return nil, fmt.Errorf("%s holds no bench rows", path)
	}
	return payload.Bench, nil
}

// comparePerf checks the measured rows against a committed baseline file
// and returns an error listing every operating point whose ns/op regressed
// by more than maxRegress (e.g. 0.15 = 15%). Points present in only one
// file are skipped: the trajectory only gates comparable measurements.
func comparePerf(rows []BenchRow, baselinePath string, maxRegress float64) error {
	base, err := loadBenchRows(baselinePath)
	if err != nil {
		return err
	}
	type point struct {
		Dataset string
		N, D    int
		P       float64
	}
	old := make(map[point]float64, len(base))
	for _, r := range base {
		old[point{r.Dataset, r.N, r.D, r.P}] = r.NsPerOp
	}
	var regressions []string
	for _, r := range rows {
		prev, ok := old[point{r.Dataset, r.N, r.D, r.P}]
		if !ok || prev <= 0 {
			continue
		}
		ratio := r.NsPerOp / prev
		fmt.Printf("perf %-14s n=%-4d p=%.1f: %12.0f ns/op vs baseline %12.0f (%.2fx)\n",
			r.Dataset, r.N, r.P, r.NsPerOp, prev, ratio)
		if ratio > 1+maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("%s n=%d d=%d p=%.1f: %.0f -> %.0f ns/op (+%.0f%%)",
					r.Dataset, r.N, r.D, r.P, prev, r.NsPerOp, 100*(ratio-1)))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("ns/op regressed >%.0f%% vs %s:\n  %s",
			100*maxRegress, baselinePath, joinLines(regressions))
	}
	fmt.Printf("perf OK: no operating point regressed >%.0f%% vs %s\n", 100*maxRegress, baselinePath)
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

func runBench(opt experiments.Options) error {
	rows, err := benchRows(opt)
	if err != nil {
		return err
	}
	header("bench: software ns/op, candidate fraction and simulated speedup")
	fmt.Printf("%-20s %5s %5s %5s %12s %10s %11s %11s %10s\n",
		"dataset", "n", "d", "p", "ns/op", "sw-speedup", "cand-frac", "sim-speedup", "tokens/s")
	for _, r := range rows {
		tokens := "-"
		if r.TokensPerSec > 0 {
			tokens = fmt.Sprintf("%.0f", r.TokensPerSec)
		}
		fmt.Printf("%-20s %5d %5d %5.1f %12.0f %9.2fx %10.1f%% %10.2fx %10s\n",
			r.Dataset, r.N, r.D, r.P, r.NsPerOp, r.SoftwareSpeedup,
			100*r.CandidateFraction, r.SimSpeedup, tokens)
	}
	return nil
}
