package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"elsa/internal/experiments"
	"elsa/internal/serve"
	"elsa/serve/client"
)

// ServingRow is one serving-layer throughput measurement: the HTTP stack
// end to end (client, envelope decode, micro-batch dispatch, engine,
// response encode) at a fixed offered concurrency. Written by -json as the
// BENCH_*_serving.json trajectory — a separate family from the "bench"
// rows, which time the engine alone.
type ServingRow struct {
	// Replicas is the number of in-process engine replicas (dispatch
	// shards) the server ran with; the 1-vs-2 pair shows what shard
	// parallelism buys at the same offered load.
	Replicas    int `json:"replicas"`
	Concurrency int `json:"concurrency"`
	Ops         int `json:"ops"`
	// OpsPerSec is completed ops over wall time for the whole run.
	OpsPerSec float64 `json:"ops_per_sec"`
	// P50Ms / P99Ms are per-op end-to-end latency percentiles.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// MeanBatch is the server's mean dispatched micro-batch size — how
	// much coalescing the offered load actually produced.
	MeanBatch float64 `json:"mean_batch"`
}

// servingRows drives a real serve.Server over HTTP at fixed concurrency,
// once per replica count. Exact ops (p = 0) keep the workload deterministic
// and calibration-free, so the rows isolate serving-stack cost rather than
// filter behaviour, which the "bench" rows already track.
func servingRows(opt experiments.Options) ([]ServingRow, error) {
	const (
		dim         = 64
		keys        = 96
		queries     = 2
		distinct    = 16
		concurrency = 16
	)
	ops := 120 * opt.Instances

	rng := rand.New(rand.NewSource(opt.Seed))
	mk := func(rows int) [][]float32 {
		m := make([][]float32, rows)
		for i := range m {
			m[i] = make([]float32, dim)
			for j := range m[i] {
				m[i][j] = float32(rng.NormFloat64())
			}
		}
		return m
	}
	type op struct{ q, k, v [][]float32 }
	payloads := make([]op, distinct)
	for i := range payloads {
		payloads[i] = op{mk(queries), mk(keys), mk(keys)}
	}

	var rows []ServingRow
	for _, replicas := range []int{1, 2} {
		srv := serve.New(serve.Config{
			BatchWindow: 2 * time.Millisecond,
			MaxBatch:    64,
			MaxQueue:    2048,
			Replicas:    replicas,
		})
		ts := httptest.NewServer(srv)
		c := client.New(ts.URL)

		// One warm-up op builds the engine replicas outside the timed run.
		warm := payloads[0]
		if _, err := c.Attend(context.Background(), warm.q, warm.k, warm.v,
			client.AttendOptions{HeadDim: dim, Seed: opt.Seed}); err != nil {
			ts.Close()
			srv.Close()
			return nil, fmt.Errorf("serving warm-up (replicas=%d): %w", replicas, err)
		}

		latencies := make([]float64, ops)
		errs := make([]error, concurrency)
		var next sync.Mutex
		cursor := 0
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					next.Lock()
					i := cursor
					cursor++
					next.Unlock()
					if i >= ops {
						return
					}
					p := payloads[i%distinct]
					t0 := time.Now()
					_, err := c.Attend(context.Background(), p.q, p.k, p.v,
						client.AttendOptions{HeadDim: dim, Seed: opt.Seed})
					latencies[i] = float64(time.Since(t0).Microseconds()) / 1e3
					if err != nil && errs[w] == nil {
						errs[w] = err
					}
				}
			}(w)
		}
		wg.Wait()
		wall := time.Since(start)
		mean := srv.Metrics().MeanBatchSize()
		ts.Close()
		srv.Close()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("serving load (replicas=%d): %w", replicas, err)
			}
		}

		sort.Float64s(latencies)
		rows = append(rows, ServingRow{
			Replicas:    replicas,
			Concurrency: concurrency,
			Ops:         ops,
			OpsPerSec:   float64(ops) / wall.Seconds(),
			P50Ms:       percentile(latencies, 0.50),
			P99Ms:       percentile(latencies, 0.99),
			MeanBatch:   mean,
		})
	}
	return rows, nil
}

// loadServingRows reads a previously written -json serving file (the
// {"serve": [...]} shape emitJSON produces for -experiment serve).
func loadServingRows(path string) ([]ServingRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload struct {
		Serve []ServingRow `json:"serve"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(payload.Serve) == 0 {
		return nil, fmt.Errorf("%s holds no serving rows", path)
	}
	return payload.Serve, nil
}

// compareServingPerf checks measured serving rows against a committed
// BENCH_*_serving.json baseline and returns an error listing every
// operating point — keyed by {replicas, concurrency} — whose throughput
// dropped by more than maxRegress (e.g. 0.15 = 15% fewer ops/s). Points
// present in only one file are skipped, mirroring the bench-row gate.
func compareServingPerf(rows []ServingRow, baselinePath string, maxRegress float64) error {
	base, err := loadServingRows(baselinePath)
	if err != nil {
		return err
	}
	type point struct{ Replicas, Concurrency int }
	old := make(map[point]float64, len(base))
	for _, r := range base {
		old[point{r.Replicas, r.Concurrency}] = r.OpsPerSec
	}
	var regressions []string
	for _, r := range rows {
		prev, ok := old[point{r.Replicas, r.Concurrency}]
		if !ok || prev <= 0 {
			continue
		}
		ratio := r.OpsPerSec / prev
		fmt.Printf("serve replicas=%d conc=%-3d: %9.0f ops/s vs baseline %9.0f (%.2fx)\n",
			r.Replicas, r.Concurrency, r.OpsPerSec, prev, ratio)
		if ratio < 1-maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("replicas=%d concurrency=%d: %.0f -> %.0f ops/s (-%.0f%%)",
					r.Replicas, r.Concurrency, prev, r.OpsPerSec, 100*(1-ratio)))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("serving throughput dropped >%.0f%% vs %s:\n  %s",
			100*maxRegress, baselinePath, joinLines(regressions))
	}
	fmt.Printf("serving perf OK: no operating point dropped >%.0f%% vs %s\n", 100*maxRegress, baselinePath)
	return nil
}

// percentile reads the q-quantile from an ascending-sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func runServe(opt experiments.Options) error {
	rows, err := servingRows(opt)
	if err != nil {
		return err
	}
	header("serving: HTTP attention service throughput (micro-batching dispatcher)")
	fmt.Printf("%9s %12s %6s %10s %9s %9s %11s\n",
		"replicas", "concurrency", "ops", "ops/s", "p50(ms)", "p99(ms)", "mean-batch")
	for _, r := range rows {
		fmt.Printf("%9d %12d %6d %10.0f %9.2f %9.2f %11.2f\n",
			r.Replicas, r.Concurrency, r.Ops, r.OpsPerSec, r.P50Ms, r.P99Ms, r.MeanBatch)
	}
	fmt.Println("(exact p=0 ops end to end through client, envelope, dispatcher and engine;")
	fmt.Println(" the 1-vs-2 replica pair shows what shard parallelism buys at fixed load)")
	return nil
}
