package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"elsa"
	"elsa/internal/experiments"
	"elsa/internal/serve"
	"elsa/serve/client"
)

// Decode bench modes. "serialized" is the pre-decode-loop status quo:
// a SerialDecode server (queries attend inline under the session gate)
// driven one query at a time — serialized execution, the order the
// fidelity test pins batched output against. "concurrent" drives the
// same per-query HTTP API with every session in flight at once against
// the continuous decode loop, showing how much coalescing independent
// per-query clients get. "step" submits the whole wave through
// POST /v1/sessions/step — one request per decode wave — so the fixed
// per-request cost is paid once per wave and the loop dispatches the
// wave as shared batches; this is how a model runner drives N
// sequences, and where the aggregate-throughput win lives.
const (
	decodeSerialized = "serialized"
	decodeConcurrent = "concurrent"
	decodeStep       = "step"
)

// DecodeRow is one continuous-decode-batching measurement: N live decode
// sessions — each with its own pinned threshold, so every batch is a
// mixed-operating-point batch — stepped over HTTP against a real
// serve.Server in one of the three modes above.
type DecodeRow struct {
	Sessions    int    `json:"sessions"`
	Concurrency int    `json:"concurrency"`
	Mode        string `json:"mode"`
	// Tokens is the number of decode steps completed across all sessions.
	Tokens int `json:"tokens"`
	// TokensPerSec is aggregate decode throughput: Tokens over wall time.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// P50Ms / P99Ms are end-to-end latency percentiles — per query in the
	// per-query modes, per wave in step mode.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// MeanBatch is the server's mean decode dispatch size — how many
	// cross-session queries each continuous-loop harvest coalesced
	// (exactly 1 on the serialized path, by construction).
	MeanBatch float64 `json:"mean_batch"`
}

// decodeRows measures the continuous decode loop against the serialized
// path at increasing session counts. Thresholds are pinned per session
// (no lazy calibration) so the rows isolate decode scheduling cost, and
// the prefix is fixed during the timed phase so every step does the
// same attention work in every mode.
func decodeRows(opt experiments.Options) ([]DecodeRow, error) {
	const (
		dim    = 64
		prefix = 96
	)
	steps := 15 * opt.Instances

	var rows []DecodeRow
	for _, sessions := range []int{4, 16, 64} {
		for _, mode := range []string{decodeSerialized, decodeConcurrent, decodeStep} {
			row, err := decodeLoad(opt, sessions, steps, dim, prefix, mode)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// decodeLoad runs one {sessions, mode} operating point end to end over
// HTTP.
func decodeLoad(opt experiments.Options, sessions, steps, dim, prefix int, mode string) (DecodeRow, error) {
	srv := serve.New(serve.Config{
		MaxBatch:     64,
		MaxQueue:     2048,
		Replicas:     1,
		SerialDecode: mode == decodeSerialized,
	})
	ts := httptest.NewServer(srv)
	defer srv.Close()
	defer ts.Close()
	// The default transport caps idle conns per host at 2; at 64-way
	// concurrency that would churn a fresh TCP connection per request
	// and the row would measure connection setup, not decode batching.
	tr := &http.Transport{MaxIdleConns: 2 * sessions, MaxIdleConnsPerHost: 2 * sessions}
	defer tr.CloseIdleConnections()
	c := client.New(ts.URL, client.WithHTTPClient(&http.Client{Transport: tr}))

	ctx := context.Background()
	handles := make([]*client.Session, sessions)
	queries := make([][][]float32, sessions)
	for i := 0; i < sessions; i++ {
		// A spread of pinned operating points: every batch the loop
		// harvests carries per-op thresholds, the mixed-session case.
		thr := elsa.Threshold{P: 1, T: 0.3 + 0.4*float64(i)/float64(sessions)}
		sess, err := c.NewSession(ctx, client.SessionOptions{
			Overrides: elsa.Overrides{Thr: &thr},
			HeadDim:   dim,
			Seed:      opt.Seed,
			Capacity:  prefix,
		})
		if err != nil {
			return DecodeRow{}, fmt.Errorf("decode session %d create: %w", i, err)
		}
		handles[i] = sess
		rng := rand.New(rand.NewSource(opt.Seed + int64(i)))
		keys := make([][]float32, prefix)
		vals := make([][]float32, prefix)
		for j := range keys {
			keys[j], vals[j] = benchVec(rng, dim), benchVec(rng, dim)
		}
		if _, err := sess.AppendBatch(ctx, keys, vals); err != nil {
			return DecodeRow{}, fmt.Errorf("decode session %d append: %w", i, err)
		}
		queries[i] = make([][]float32, steps)
		for s := range queries[i] {
			queries[i][s] = benchVec(rng, dim)
		}
		// One warm-up step per session outside the timed run: engine
		// wiring, connection establishment, decode-job buffers.
		if _, err := sess.Query(ctx, queries[i][0], elsa.Overrides{}); err != nil {
			return DecodeRow{}, fmt.Errorf("decode session %d warm-up: %w", i, err)
		}
	}

	tokens := sessions * steps
	var latencies []float64
	concurrency := 1
	start := time.Now()
	switch mode {
	case decodeStep:
		// One request per decode wave, every session in it — so server-side
		// concurrency is the wave width even though the client pipeline is
		// one wave at a time, exactly a model runner's decode loop.
		concurrency = sessions
		latencies = make([]float64, steps)
		wave := make([]client.StepQuery, sessions)
		for s := 0; s < steps; s++ {
			for i := range wave {
				wave[i] = client.StepQuery{Session: handles[i], Q: queries[i][s]}
			}
			t0 := time.Now()
			results, err := c.Step(ctx, wave)
			latencies[s] = float64(time.Since(t0).Microseconds()) / 1e3
			if err != nil {
				return DecodeRow{}, fmt.Errorf("decode step wave: %w", err)
			}
			for i, r := range results {
				if r.Err != nil {
					return DecodeRow{}, fmt.Errorf("decode step session %d: %w", i, r.Err)
				}
			}
		}
	case decodeConcurrent:
		concurrency = sessions
		latencies = make([]float64, tokens)
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for s := 0; s < steps; s++ {
					t0 := time.Now()
					_, err := handles[i].Query(ctx, queries[i][s], elsa.Overrides{})
					latencies[i*steps+s] = float64(time.Since(t0).Microseconds()) / 1e3
					if err != nil && errs[i] == nil {
						errs[i] = err
					}
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return DecodeRow{}, fmt.Errorf("decode load (sessions=%d): %w", sessions, err)
			}
		}
	default: // decodeSerialized
		latencies = make([]float64, tokens)
		for s := 0; s < steps; s++ {
			for i := 0; i < sessions; i++ {
				t0 := time.Now()
				_, err := handles[i].Query(ctx, queries[i][s], elsa.Overrides{})
				latencies[i*steps+s] = float64(time.Since(t0).Microseconds()) / 1e3
				if err != nil {
					return DecodeRow{}, fmt.Errorf("serialized decode step: %w", err)
				}
			}
		}
	}
	wall := time.Since(start)

	// On the serialized path the server never dispatches a decode batch
	// (queries attend inline), so its batch size is 1 by construction.
	mean := 1.0
	if mode != decodeSerialized {
		mean = srv.Metrics().MeanDecodeBatchSize()
	}
	sort.Float64s(latencies)
	return DecodeRow{
		Sessions:     sessions,
		Concurrency:  concurrency,
		Mode:         mode,
		Tokens:       tokens,
		TokensPerSec: float64(tokens) / wall.Seconds(),
		P50Ms:        percentile(latencies, 0.50),
		P99Ms:        percentile(latencies, 0.99),
		MeanBatch:    mean,
	}, nil
}

// benchVec draws one dim-length vector from rng.
func benchVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// servingSnapshot is the combined BENCH_*_serving.json shape: the
// original top-level "serve" rows (older gates and ci.sh parse that key
// directly) plus the decode-batching and session-migration families
// added alongside.
type servingSnapshot struct {
	Serve     []ServingRow   `json:"serve"`
	Decode    []DecodeRow    `json:"decode,omitempty"`
	Migrate   []MigrateRow   `json:"migrate,omitempty"`
	Autoscale []AutoscaleRow `json:"autoscale,omitempty"`
	Exact     []ExactRow     `json:"exact,omitempty"`
}

// loadDecodeRows reads the "decode" family from a committed serving
// snapshot. Snapshots from before decode batching simply lack the key;
// that is not an error — the caller skips the comparison.
func loadDecodeRows(path string) ([]DecodeRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload servingSnapshot
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return payload.Decode, nil
}

// compareDecodePerf gates the decode-batching trajectory: for every
// operating point — keyed by {sessions, mode} — present in both
// committed snapshots, mean_batch must not have dropped by more than
// maxRegress. A snapshot without decode rows (predating the family)
// skips the gate rather than failing it.
func compareDecodePerf(newPath, baselinePath string, maxRegress float64) error {
	rows, err := loadDecodeRows(newPath)
	if err != nil {
		return err
	}
	base, err := loadDecodeRows(baselinePath)
	if err != nil {
		return err
	}
	if len(rows) == 0 || len(base) == 0 {
		fmt.Printf("decode batching rows absent from %s or %s; skipping mean_batch gate\n", newPath, baselinePath)
		return nil
	}
	type point struct {
		Sessions int
		Mode     string
	}
	old := make(map[point]float64, len(base))
	for _, r := range base {
		old[point{r.Sessions, r.Mode}] = r.MeanBatch
	}
	var regressions []string
	for _, r := range rows {
		prev, ok := old[point{r.Sessions, r.Mode}]
		if !ok || prev <= 1 {
			// Unmatched points and serialized rows (mean_batch pinned at 1)
			// carry no coalescing signal to gate.
			continue
		}
		ratio := r.MeanBatch / prev
		fmt.Printf("decode sessions=%-3d mode=%-10s: mean_batch %6.2f vs baseline %6.2f (%.2fx)\n",
			r.Sessions, r.Mode, r.MeanBatch, prev, ratio)
		if ratio < 1-maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("sessions=%d mode=%s: mean_batch %.2f -> %.2f (-%.0f%%)",
					r.Sessions, r.Mode, prev, r.MeanBatch, 100*(1-ratio)))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("decode mean_batch dropped >%.0f%% vs %s:\n  %s",
			100*maxRegress, baselinePath, joinLines(regressions))
	}
	fmt.Printf("decode batching OK: no operating point lost >%.0f%% mean_batch vs %s\n", 100*maxRegress, baselinePath)
	return nil
}

func runDecode(opt experiments.Options) error {
	rows, err := decodeRows(opt)
	if err != nil {
		return err
	}
	header("decode: continuous cross-session batching vs serialized decode")
	fmt.Printf("%9s %12s %11s %7s %10s %9s %9s %11s\n",
		"sessions", "concurrency", "mode", "tokens", "tokens/s", "p50(ms)", "p99(ms)", "mean-batch")
	for _, r := range rows {
		fmt.Printf("%9d %12d %11s %7d %10.0f %9.2f %9.2f %11.2f\n",
			r.Sessions, r.Concurrency, r.Mode, r.Tokens, r.TokensPerSec, r.P50Ms, r.P99Ms, r.MeanBatch)
	}
	printDecodeSpeedups(rows)
	fmt.Println("(each session holds a distinct pinned threshold, so every harvested batch")
	fmt.Println(" is a mixed-operating-point dispatch; serialized rows drive the pre-decode-")
	fmt.Println(" loop inline path one query at a time — the order the fidelity test pins —")
	fmt.Println(" and step rows submit each wave as one POST /v1/sessions/step request)")
	return nil
}

// printDecodeSpeedups pairs each batched-mode row with its serialized
// counterpart and prints the aggregate-throughput ratio.
func printDecodeSpeedups(rows []DecodeRow) {
	serial := make(map[int]DecodeRow, len(rows))
	for _, r := range rows {
		if r.Mode == decodeSerialized {
			serial[r.Sessions] = r
		}
	}
	for _, r := range rows {
		if r.Mode == decodeSerialized {
			continue
		}
		base, ok := serial[r.Sessions]
		if !ok || base.TokensPerSec <= 0 {
			continue
		}
		fmt.Printf("sessions=%-3d %-10s: %.2fx aggregate decode tokens/s over serialized (mean batch %.2f)\n",
			r.Sessions, r.Mode, r.TokensPerSec/base.TokensPerSec, r.MeanBatch)
	}
}
