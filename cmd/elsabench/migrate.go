package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"elsa"
	"elsa/internal/experiments"
	"elsa/internal/serve"
	"elsa/serve/client"
)

// MigrateRow is one portable-session-state measurement at a {tokens,
// cold watermark} operating point: how much memory one decode session
// holds resident, how large its wire-format export is, how fast whole
// sessions move between two live servers over the HTTP export/import
// path, and how long the engine takes to rehydrate the exported blob.
type MigrateRow struct {
	// Tokens is the session's appended prefix length.
	Tokens int `json:"tokens"`
	// ColdWatermark is the hot f32 tail size; 0 keeps the whole prefix
	// hot (the pre-cold-split layout), >0 bit-packs everything older.
	ColdWatermark int `json:"cold_watermark"`
	// ResidentBytes is the in-memory footprint of one session's stream.
	ResidentBytes int `json:"resident_bytes"`
	// WireBytes is the size of the versioned export blob for the same
	// stream — what a migration or spill actually ships.
	WireBytes int `json:"wire_bytes"`
	// MigrationsPerSec is whole-session moves per second between two
	// live servers: export on the source, close, import on the target.
	MigrationsPerSec float64 `json:"migrations_per_sec"`
	// RehydrateP50Ms / RehydrateP99Ms are engine-level ImportStream
	// latency percentiles over the exported blob — the cost a lazily
	// rehydrated (spilled) session pays on its first request back.
	RehydrateP50Ms float64 `json:"rehydrate_p50_ms"`
	RehydrateP99Ms float64 `json:"rehydrate_p99_ms"`
}

// migrateRows measures portable session state at hot (watermark 0) and
// cold-heavy (watermark 512) layouts. The 4096-token cold-heavy row is
// the headline point: its resident bytes/session against the hot row of
// the same length is the cold-split memory win.
func migrateRows(opt experiments.Options) ([]MigrateRow, error) {
	const (
		dim       = 64
		watermark = 512
	)
	var rows []MigrateRow
	for _, tokens := range []int{1024, 4096} {
		for _, wm := range []int{0, watermark} {
			row, err := migratePoint(opt, tokens, wm, dim)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// migratePoint runs one {tokens, watermark} operating point: resident
// and wire sizes plus rehydrate latency straight against the engine,
// then migration throughput over HTTP between two real serve.Servers.
func migratePoint(opt experiments.Options, tokens, watermark, dim int) (MigrateRow, error) {
	eng, err := elsa.New(elsa.Options{HeadDim: dim, Seed: opt.Seed})
	if err != nil {
		return MigrateRow{}, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + int64(tokens) + int64(watermark)))
	st := eng.NewStreamCold(tokens, watermark)
	keys := make([][]float32, tokens)
	vals := make([][]float32, tokens)
	for i := 0; i < tokens; i++ {
		keys[i], vals[i] = benchVec(rng, dim), benchVec(rng, dim)
		if err := st.Append(keys[i], vals[i]); err != nil {
			return MigrateRow{}, fmt.Errorf("migrate append: %w", err)
		}
	}
	resident := st.StateBytes()
	blob := st.Export()

	// Rehydrate latency: the blob → live stream path a spilled session
	// takes on its first request after eviction to the state dir.
	reps := 20 * opt.Instances
	lat := make([]float64, reps)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if _, err := eng.ImportStream(blob); err != nil {
			return MigrateRow{}, fmt.Errorf("migrate rehydrate: %w", err)
		}
		lat[r] = float64(time.Since(t0).Microseconds()) / 1e3
	}
	sort.Float64s(lat)

	perSec, err := migrationChurn(opt, tokens, watermark, dim, keys, vals)
	if err != nil {
		return MigrateRow{}, err
	}
	return MigrateRow{
		Tokens:           tokens,
		ColdWatermark:    watermark,
		ResidentBytes:    resident,
		WireBytes:        len(blob),
		MigrationsPerSec: perSec,
		RehydrateP50Ms:   percentile(lat, 0.50),
		RehydrateP99Ms:   percentile(lat, 0.99),
	}, nil
}

// migrationChurn bounces one live session between two servers over the
// HTTP export/import path and reports whole-session moves per second.
// A query before the first move and after the last pins bit-identical
// state across every hop.
func migrationChurn(opt experiments.Options, tokens, watermark, dim int, keys, vals [][]float32) (float64, error) {
	mk := func() (*serve.Server, *httptest.Server) {
		srv := serve.New(serve.Config{
			MaxBatch:      64,
			MaxQueue:      2048,
			Replicas:      1,
			ColdWatermark: watermark,
		})
		return srv, httptest.NewServer(srv)
	}
	srvA, tsA := mk()
	defer srvA.Close()
	defer tsA.Close()
	srvB, tsB := mk()
	defer srvB.Close()
	defer tsB.Close()
	clients := [2]*client.Client{client.New(tsA.URL), client.New(tsB.URL)}

	ctx := context.Background()
	// A pinned threshold keeps every hop free of lazy calibration; the
	// exported state carries it to the importing server.
	thr := elsa.Threshold{P: 1, T: 0.5}
	sess, err := clients[0].NewSession(ctx, client.SessionOptions{
		Overrides: elsa.Overrides{Thr: &thr},
		HeadDim:   dim,
		Seed:      opt.Seed,
		Capacity:  tokens,
	})
	if err != nil {
		return 0, fmt.Errorf("migrate session create: %w", err)
	}
	if _, err := sess.AppendBatch(ctx, keys, vals); err != nil {
		return 0, fmt.Errorf("migrate session append: %w", err)
	}
	rng := rand.New(rand.NewSource(opt.Seed + 77))
	q := benchVec(rng, dim)
	before, err := sess.Query(ctx, q, elsa.Overrides{})
	if err != nil {
		return 0, fmt.Errorf("migrate pre-move query: %w", err)
	}

	moves := 4 * opt.Instances
	start := time.Now()
	for m := 0; m < moves; m++ {
		state, err := sess.Export(ctx)
		if err != nil {
			return 0, fmt.Errorf("migrate move %d export: %w", m, err)
		}
		if err := sess.Close(ctx); err != nil {
			return 0, fmt.Errorf("migrate move %d close: %w", m, err)
		}
		sess, err = clients[(m+1)%2].ImportSession(ctx, state)
		if err != nil {
			return 0, fmt.Errorf("migrate move %d import: %w", m, err)
		}
	}
	wall := time.Since(start)

	after, err := sess.Query(ctx, q, elsa.Overrides{})
	if err != nil {
		return 0, fmt.Errorf("migrate post-move query: %w", err)
	}
	if !sameVec(before.Context, after.Context) {
		return 0, fmt.Errorf("migrate (tokens=%d watermark=%d): output diverged after %d moves", tokens, watermark, moves)
	}
	return float64(moves) / wall.Seconds(), nil
}

// sameVec reports bitwise equality of two float32 vectors.
func sameVec(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// loadMigrateRows reads the "migrate" family from a committed serving
// snapshot. Snapshots from before portable session state simply lack
// the key; that is not an error — the caller skips the comparison.
func loadMigrateRows(path string) ([]MigrateRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload servingSnapshot
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return payload.Migrate, nil
}

// compareMigratePerf gates the migration trajectory: for every operating
// point — keyed by {tokens, cold_watermark} — present in both committed
// snapshots, migrations/s must not have dropped by more than maxRegress,
// and resident bytes/session must not have grown by more than the same
// margin. Snapshots without migrate rows skip the gate.
func compareMigratePerf(newPath, baselinePath string, maxRegress float64) error {
	rows, err := loadMigrateRows(newPath)
	if err != nil {
		return err
	}
	base, err := loadMigrateRows(baselinePath)
	if err != nil {
		return err
	}
	if len(rows) == 0 || len(base) == 0 {
		fmt.Printf("migrate rows absent from %s or %s; skipping migration gate\n", newPath, baselinePath)
		return nil
	}
	type point struct {
		Tokens    int
		Watermark int
	}
	old := make(map[point]MigrateRow, len(base))
	for _, r := range base {
		old[point{r.Tokens, r.ColdWatermark}] = r
	}
	var regressions []string
	for _, r := range rows {
		prev, ok := old[point{r.Tokens, r.ColdWatermark}]
		if !ok || prev.MigrationsPerSec <= 0 {
			continue
		}
		ratio := r.MigrationsPerSec / prev.MigrationsPerSec
		fmt.Printf("migrate tokens=%-5d watermark=%-4d: %7.1f moves/s vs baseline %7.1f (%.2fx), resident %s vs %s\n",
			r.Tokens, r.ColdWatermark, r.MigrationsPerSec, prev.MigrationsPerSec, ratio,
			kib(r.ResidentBytes), kib(prev.ResidentBytes))
		if ratio < 1-maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("tokens=%d watermark=%d: %.1f -> %.1f moves/s (-%.0f%%)",
					r.Tokens, r.ColdWatermark, prev.MigrationsPerSec, r.MigrationsPerSec, 100*(1-ratio)))
		}
		if prev.ResidentBytes > 0 && float64(r.ResidentBytes) > float64(prev.ResidentBytes)*(1+maxRegress) {
			regressions = append(regressions,
				fmt.Sprintf("tokens=%d watermark=%d: resident bytes/session %s -> %s (+%.0f%%)",
					r.Tokens, r.ColdWatermark, kib(prev.ResidentBytes), kib(r.ResidentBytes),
					100*(float64(r.ResidentBytes)/float64(prev.ResidentBytes)-1)))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("migration perf regressed >%.0f%% vs %s:\n  %s",
			100*maxRegress, baselinePath, joinLines(regressions))
	}
	fmt.Printf("migration OK: no operating point regressed >%.0f%% vs %s\n", 100*maxRegress, baselinePath)
	return nil
}

// kib renders a byte count as KiB with one decimal.
func kib(n int) string {
	return fmt.Sprintf("%.1fKiB", float64(n)/1024)
}

func runMigrate(opt experiments.Options) error {
	rows, err := migrateRows(opt)
	if err != nil {
		return err
	}
	header("migrate: portable session state — resident footprint, wire size, live moves")
	fmt.Printf("%7s %10s %14s %12s %9s %17s %17s\n",
		"tokens", "watermark", "resident/sess", "wire bytes", "moves/s", "rehydrate p50(ms)", "rehydrate p99(ms)")
	for _, r := range rows {
		fmt.Printf("%7d %10d %14s %12s %9.1f %17.2f %17.2f\n",
			r.Tokens, r.ColdWatermark, kib(r.ResidentBytes), kib(r.WireBytes),
			r.MigrationsPerSec, r.RehydrateP50Ms, r.RehydrateP99Ms)
	}
	printMigrateReductions(rows)
	fmt.Println("(each move exports the whole session over HTTP, closes it on the source and")
	fmt.Println(" imports it on the other server; a query before the first hop and after the")
	fmt.Println(" last pins bit-identical output, and rehydrate rows time the blob -> stream")
	fmt.Println(" path a spilled session pays on its first request back)")
	return nil
}

// printMigrateReductions pairs each cold row with the hot (watermark 0)
// row of the same length and prints the resident-memory reduction — the
// cold-split win the 4096-token point is sized to demonstrate (>=2x).
func printMigrateReductions(rows []MigrateRow) {
	hot := make(map[int]MigrateRow, len(rows))
	for _, r := range rows {
		if r.ColdWatermark == 0 {
			hot[r.Tokens] = r
		}
	}
	for _, r := range rows {
		if r.ColdWatermark == 0 {
			continue
		}
		base, ok := hot[r.Tokens]
		if !ok || r.ResidentBytes <= 0 {
			continue
		}
		fmt.Printf("tokens=%-5d watermark=%-4d: %.2fx less resident memory per session than all-hot (%s vs %s)\n",
			r.Tokens, r.ColdWatermark, float64(base.ResidentBytes)/float64(r.ResidentBytes),
			kib(r.ResidentBytes), kib(base.ResidentBytes))
	}
}
