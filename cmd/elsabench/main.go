// Command elsabench regenerates the paper's evaluation tables and figures
// (Fig 2, Fig 10, Fig 11, Fig 13, Table I, the §V-E A³/TPU comparisons,
// the §V-C end-to-end analysis, the §IV-B host-integration study, workload
// diagnostics, whole-model fidelity, and the ablation suite) from the Go
// reproduction, printing each as a text table.
//
// Usage:
//
//	elsabench [-experiment all|fig2|fig10|fig11|fig13|table1|a3|tpu|e2e|host|workloads|modelfid|ablations|bench|serve|decode|migrate|autoscale|exact]
//	          [-quick] [-seed N] [-json out.json] [-svg dir]
//	          [-baseline BENCH_old.json [-compare BENCH_new.json] [-maxregress 0.15]]
//
// -json out.json writes the selected experiment's raw rows — including the
// "bench" experiment's machine-readable ns/op, candidate-fraction and
// speedup measurements — to a file ("-" writes to stdout), so successive
// changes can be tracked as a BENCH_*.json perf trajectory. The "serve"
// experiment measures the HTTP serving stack (ops/s, p50/p99 latency, mean
// micro-batch size, 1 vs 2 in-process replicas) and writes the separate
// BENCH_*_serving.json trajectory; with -experiment serve, -baseline and
// -compare gate that trajectory on ops/s — and, when both snapshots carry
// the "decode" family, on decode mean_batch — instead of ns/op. The
// "decode" experiment measures the continuous decode-batching loop
// (aggregate tokens/s and mean coalesced batch size, batched vs the
// serialized baseline, across session counts), and the "migrate"
// experiment measures portable session state (resident bytes/session hot
// vs cold, whole-session moves/s over the HTTP export/import path,
// rehydrate latency), and the "autoscale" experiment measures the closed
// autoscale loop (rebalance convergence time and migrations toward a
// fresh joiner, plus shadow-mirror replay ns/token inline vs
// batched/async). The "exact" experiment measures the two exact attention
// backends (the scores reference vs the linear-scan oracle) on the ViT
// patch-grid and long-document workload families: batch ns/op, allocated
// bytes/op (the memory ceiling — linear scan must not materialize n×n),
// streaming decode tokens/s, and the cross-backend ULP agreement, plus
// the cheap-softmax-exponential ablation. -experiment serve -json writes
// all five families into the serving snapshot, and -compare additionally
// gates decode mean_batch, migration moves/s and resident bytes,
// rebalance convergence, batched-mirror ns/token, and the exact family's
// tokens/s, memory ceiling, and differential bound when both snapshots
// carry those families.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"elsa/internal/energy"
	"elsa/internal/experiments"
	"elsa/internal/host"
	"elsa/internal/plot"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: all|fig2|fig10|fig11|fig13|table1|a3|tpu|e2e|host|workloads|modelfid|ablations|bench|serve|decode|migrate|autoscale|exact")
	quick := flag.Bool("quick", false, "reduced sample counts for a fast smoke run")
	seed := flag.Int64("seed", 1, "random seed")
	jsonOut := flag.String("json", "", `write raw experiment rows as JSON to this file instead of tables ("-" = stdout)`)
	svgDir := flag.String("svg", "", "also render the figures as SVG files into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	baseline := flag.String("baseline", "", "bench/serve experiments: compare against this committed BENCH_*.json (ns/op for bench, ops/s for serve)")
	maxRegress := flag.Float64("maxregress", 0.15, "with -baseline: allowed fractional regression before failing")
	compare := flag.String("compare", "", "with -baseline: compare this committed BENCH_*.json instead of measuring fresh")
	flag.Parse()

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	opt.Seed = *seed

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "elsabench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "elsabench:", err)
			}
		}()
	}

	if *compare != "" && *baseline == "" {
		fatal(fmt.Errorf("-compare requires -baseline to compare against"))
	}
	if *baseline != "" {
		if *experiment == "serve" {
			// The serving-trajectory gate: ops/s keyed {replicas, concurrency}.
			var rows []ServingRow
			var err error
			if *compare != "" {
				// Two committed trajectory files: no measurement, just the gate.
				rows, err = loadServingRows(*compare)
			} else {
				rows, err = servingRows(opt)
			}
			if err != nil {
				fatal(err)
			}
			if *jsonOut != "" && *compare == "" {
				if err := writeJSONPayload(map[string]any{"serve": rows}, *jsonOut); err != nil {
					fatal(err)
				}
			}
			failed := false
			if err := compareServingPerf(rows, *baseline, *maxRegress); err != nil {
				fmt.Fprintln(os.Stderr, "elsabench:", err)
				failed = true
			}
			// The decode mean_batch and migration gates read their families
			// out of both committed snapshots, so they only apply in
			// -compare mode; a fresh measurement keeps the ops/s-only gate.
			if *compare != "" {
				if err := compareDecodePerf(*compare, *baseline, *maxRegress); err != nil {
					fmt.Fprintln(os.Stderr, "elsabench:", err)
					failed = true
				}
				if err := compareMigratePerf(*compare, *baseline, *maxRegress); err != nil {
					fmt.Fprintln(os.Stderr, "elsabench:", err)
					failed = true
				}
				if err := compareAutoscalePerf(*compare, *baseline, *maxRegress); err != nil {
					fmt.Fprintln(os.Stderr, "elsabench:", err)
					failed = true
				}
				if err := compareExactPerf(*compare, *baseline, *maxRegress); err != nil {
					fmt.Fprintln(os.Stderr, "elsabench:", err)
					failed = true
				}
			}
			if failed {
				os.Exit(2)
			}
			return
		}
		if *experiment != "bench" && *experiment != "all" {
			fatal(fmt.Errorf("-baseline requires -experiment bench or serve"))
		}
		var rows []BenchRow
		var err error
		if *compare != "" {
			// Two committed trajectory files: no measurement, just the gate.
			rows, err = loadBenchRows(*compare)
		} else {
			rows, err = benchRows(opt)
		}
		if err != nil {
			fatal(err)
		}
		if *jsonOut != "" && *compare == "" {
			if err := writeJSONPayload(map[string]any{"bench": rows}, *jsonOut); err != nil {
				fatal(err)
			}
		}
		if err := comparePerf(rows, *baseline, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "elsabench:", err)
			os.Exit(2)
		}
		return
	}

	runners := map[string]func(experiments.Options) error{
		"fig2":      runFig2,
		"fig10":     runFig10,
		"fig11":     runFig11,
		"fig13":     runFig13,
		"table1":    runTable1,
		"a3":        runA3,
		"tpu":       runTPU,
		"ablations": runAblations,
		"e2e":       runEndToEnd,
		"host":      runHost,
		"workloads": runWorkloads,
		"modelfid":  runModelFidelity,
		"bench":     runBench,
		"serve":     runServe,
		"decode":    runDecode,
		"migrate":   runMigrate,
		"autoscale": runAutoscale,
		"exact":     runExact,
	}
	order := []string{"fig2", "fig10", "fig11", "fig13", "table1", "a3", "tpu", "e2e", "host", "workloads", "modelfid", "ablations", "bench", "serve", "decode", "migrate", "autoscale", "exact"}

	if *svgDir != "" {
		if err := emitSVG(*svgDir, opt); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "figures written to %s\n", *svgDir)
		return
	}
	if *jsonOut != "" {
		if err := emitJSON(*experiment, order, opt, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *experiment == "all" {
		for _, name := range order {
			if err := runners[name](opt); err != nil {
				fatal(err)
			}
		}
		return
	}
	runner, ok := runners[*experiment]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want one of all, %v)", *experiment, order))
	}
	if err := runner(opt); err != nil {
		fatal(err)
	}
}

// jsonPayload builds the raw rows for one experiment.
func jsonPayload(name string, opt experiments.Options) (any, error) {
	switch name {
	case "fig2":
		return experiments.Fig2(opt)
	case "fig10":
		return experiments.Fig10(opt)
	case "fig11":
		rows, summary, err := experiments.Fig11(opt)
		if err != nil {
			return nil, err
		}
		return map[string]any{"rows": rows, "summary": summary}, nil
	case "fig13":
		rows, summary, err := experiments.Fig13(opt)
		if err != nil {
			return nil, err
		}
		return map[string]any{"rows": rows, "summary": summary}, nil
	case "table1":
		return map[string]any{"rows": energy.TableI, "totals": energy.Totals()}, nil
	case "a3":
		return experiments.A3Compare(opt)
	case "tpu":
		return experiments.TPUCompare(opt)
	case "e2e":
		rows, err := experiments.EndToEnd(opt)
		if err != nil {
			return nil, err
		}
		return map[string]any{"rows": rows, "summary": experiments.SummarizeEndToEnd(rows)}, nil
	case "host":
		sec, err := experiments.RepresentativeOpSeconds(opt)
		if err != nil {
			return nil, err
		}
		var links []host.Integration
		for _, l := range []host.Link{host.ByReference(), host.NVLink2(), host.PCIe3x16()} {
			in, err := host.Analyze(l, 512, 64, sec)
			if err != nil {
				return nil, err
			}
			links = append(links, in)
		}
		return links, nil
	case "bench":
		return benchRows(opt)
	case "serve":
		// The serving snapshot carries every HTTP family: the one-shot
		// attend rows under the original top-level "serve" key, with the
		// continuous decode-batching and session-migration rows alongside.
		rows, err := servingRows(opt)
		if err != nil {
			return nil, err
		}
		dec, err := decodeRows(opt)
		if err != nil {
			return nil, err
		}
		mig, err := migrateRows(opt)
		if err != nil {
			return nil, err
		}
		asc, err := autoscaleRows(opt)
		if err != nil {
			return nil, err
		}
		ex, err := exactRows(opt)
		if err != nil {
			return nil, err
		}
		return servingSnapshot{Serve: rows, Decode: dec, Migrate: mig, Autoscale: asc, Exact: ex}, nil
	case "decode":
		return decodeRows(opt)
	case "migrate":
		return migrateRows(opt)
	case "autoscale":
		return autoscaleRows(opt)
	case "exact":
		return exactRows(opt)
	case "ablations":
		hk, err := experiments.AblateHashKind(opt)
		if err != nil {
			return nil, err
		}
		ba, err := experiments.AblateBias(opt)
		if err != nil {
			return nil, err
		}
		ka, err := experiments.AblateKron(opt)
		if err != nil {
			return nil, err
		}
		ks, err := experiments.AblateK(opt)
		if err != nil {
			return nil, err
		}
		qa, err := experiments.AblateQuantization(opt)
		if err != nil {
			return nil, err
		}
		sa, err := experiments.AblateSelection(opt)
		if err != nil {
			return nil, err
		}
		pp, err := experiments.AblatePipeline(opt)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"hashKind": hk, "bias": ba, "kron": ka, "k": ks,
			"quantization": qa, "selection": sa, "pipeline": pp,
		}, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}

func emitJSON(name string, order []string, opt experiments.Options, path string) error {
	if name != "all" {
		payload, err := jsonPayload(name, opt)
		if err != nil {
			return err
		}
		if name == "serve" {
			// The serving snapshot already carries its own top-level keys
			// ("serve" plus "decode"); wrapping it again would bury the
			// "serve" key that ci.sh and older trajectory gates parse.
			return writeJSONPayload(payload, path)
		}
		return writeJSONPayload(map[string]any{name: payload}, path)
	}
	out := make(map[string]any, len(order))
	for _, n := range order {
		payload, err := jsonPayload(n, opt)
		if err != nil {
			return err
		}
		out[n] = payload
	}
	return writeJSONPayload(out, path)
}

// writeJSONPayload encodes payload as indented JSON to path ("-" = stdout).
func writeJSONPayload(payload any, path string) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "elsabench:", cerr)
			} else {
				fmt.Fprintf(os.Stderr, "results written to %s\n", path)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elsabench:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func runFig2(opt experiments.Options) error {
	rows, err := experiments.Fig2(opt)
	if err != nil {
		return err
	}
	header("Fig 2: self-attention share of model runtime (GPU model)")
	fmt.Printf("%-15s %6s %7s %12s %12s\n", "model", "seq", "ffn", "time-share", "flop-share")
	for _, r := range rows {
		fmt.Printf("%-15s %5dx %5d/4⁰ %11.1f%% %11.1f%%\n",
			r.Model, r.SeqMult, 4/r.FFNDiv, 100*r.AttnShare, 100*r.AttnFLOPShare)
	}
	s := experiments.SummarizeFig2(rows)
	fmt.Printf("mean share: default %.1f%% (paper ~38%%) | 4x seq %.1f%% (paper ~64%%) | 4x seq + FFN/4 %.1f%% (paper ~73%%)\n",
		100*s.MeanShareDefault, 100*s.MeanShare4xSeq, 100*s.MeanShare4xSeqFFN4)
	return nil
}

func runFig10(opt experiments.Options) error {
	rows, err := experiments.Fig10(opt)
	if err != nil {
		return err
	}
	header("Fig 10: candidate fraction (bars) and accuracy-proxy loss (lines) vs p")
	fmt.Printf("%-28s %5s %10s %10s %9s %9s %14s\n", "combo", "p", "cand-frac", "mass", "loss-pct", "cosine", "metric-after")
	for _, r := range rows {
		fmt.Printf("%-28s %5.1f %9.1f%% %10.4f %8.2f%% %9.4f %7.3f %s\n",
			r.Combo, r.P, 100*r.CandidateFraction, r.RetainedMass, r.AccuracyLossPct, r.MeanCosine,
			r.MetricAfter, r.Metric)
	}
	s := experiments.SummarizeFig10(rows)
	fmt.Printf("p=1: mean fraction %.1f%% at %.2f%% loss (paper: <40%% at sub-1%%)\n",
		100*s.MeanFractionP1, s.MeanLossP1)
	fmt.Printf("p=2: mean fraction %.1f%% at %.2f%% loss (paper: ~26%% at sub-2%%)\n",
		100*s.MeanFractionP2, s.MeanLossP2)
	return nil
}

func runFig11(opt experiments.Options) error {
	rows, summary, err := experiments.Fig11(opt)
	if err != nil {
		return err
	}
	header("Fig 11a: normalized self-attention throughput (GPU = 1)")
	fmt.Printf("%-28s %8s %8s %8s %8s %8s\n", "combo", "ideal", "base", "conserv", "moderate", "aggress")
	for _, r := range rows {
		fmt.Printf("%-28s %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			r.Combo, r.IdealThroughputNorm,
			r.ThroughputNorm[experiments.Base],
			r.ThroughputNorm[experiments.Conservative],
			r.ThroughputNorm[experiments.Moderate],
			r.ThroughputNorm[experiments.Aggressive])
	}
	fmt.Printf("geomean: base %.1fx (paper 7.99-43.93x band) | cons %.1fx (paper 57x) | mod %.1fx (paper 73x) | aggr %.1fx (paper 81x)\n",
		summary.ThroughputGeomean[experiments.Base],
		summary.ThroughputGeomean[experiments.Conservative],
		summary.ThroughputGeomean[experiments.Moderate],
		summary.ThroughputGeomean[experiments.Aggressive])
	fmt.Printf("base range: %.1fx - %.1fx\n",
		summary.ThroughputMin[experiments.Base], summary.ThroughputMax[experiments.Base])

	header("Fig 11b: latency vs ideal accelerator (preprocessing share hatched)")
	fmt.Printf("%-28s %10s %10s %10s %10s %9s\n", "combo", "base", "conserv", "moderate", "aggress", "preproc")
	for _, r := range rows {
		fmt.Printf("%-28s %10.2f %10.2f %10.2f %10.2f %8.1f%%\n",
			r.Combo,
			r.LatencyVsIdeal[experiments.Base],
			r.LatencyVsIdeal[experiments.Conservative],
			r.LatencyVsIdeal[experiments.Moderate],
			r.LatencyVsIdeal[experiments.Aggressive],
			100*r.PreprocessFrac[experiments.Conservative])
	}
	fmt.Printf("latency geomean: base %.2fx (paper 1.03x) | cons %.2fx (paper 0.38x) | mod %.2fx (paper 0.29x) | aggr %.2fx (paper 0.26x)\n",
		summary.LatencyGeomean[experiments.Base],
		summary.LatencyGeomean[experiments.Conservative],
		summary.LatencyGeomean[experiments.Moderate],
		summary.LatencyGeomean[experiments.Aggressive])
	fmt.Printf("speedup over base: cons %.2fx | mod %.2fx | aggr %.2fx\n",
		summary.SpeedupOverBase[experiments.Conservative],
		summary.SpeedupOverBase[experiments.Moderate],
		summary.SpeedupOverBase[experiments.Aggressive])
	return nil
}

func runFig13(opt experiments.Options) error {
	rows, summary, err := experiments.Fig13(opt)
	if err != nil {
		return err
	}
	header("Fig 13a: normalized energy efficiency (performance/W vs GPU)")
	fmt.Printf("%-28s %9s %9s %9s %9s\n", "combo", "base", "conserv", "moderate", "aggress")
	for _, r := range rows {
		fmt.Printf("%-28s %9.0f %9.0f %9.0f %9.0f\n", r.Combo,
			r.EfficiencyGain[experiments.Base],
			r.EfficiencyGain[experiments.Conservative],
			r.EfficiencyGain[experiments.Moderate],
			r.EfficiencyGain[experiments.Aggressive])
	}
	fmt.Printf("geomean: base %.0fx (paper 442x) | cons %.0fx (paper 1265x) | mod %.0fx (paper 1726x) | aggr %.0fx (paper 2093x)\n",
		summary.EfficiencyGeomean[experiments.Base],
		summary.EfficiencyGeomean[experiments.Conservative],
		summary.EfficiencyGeomean[experiments.Moderate],
		summary.EfficiencyGeomean[experiments.Aggressive])

	header("Fig 13b: energy breakdown by module (share of total)")
	for _, m := range experiments.Modes() {
		fmt.Printf("-- %s --\n", m)
		share := summary.BreakdownShare[m]
		names := make([]string, 0, len(share))
		for name := range share {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool { return share[names[i]] > share[names[j]] })
		for _, name := range names {
			fmt.Printf("  %-28s %6.1f%%\n", name, 100*share[name])
		}
	}
	return nil
}

func runTable1(experiments.Options) error {
	header("Table I: area and peak power characteristics")
	fmt.Printf("%-30s %10s %12s %11s\n", "module", "area(mm2)", "dynamic(mW)", "static(mW)")
	for _, row := range energy.TableI {
		fmt.Printf("%-30s %10.3f %12.2f %11.2f\n", row.Name, row.AreaMM2, row.DynamicMW, row.StaticMW)
	}
	t := energy.Totals()
	fmt.Printf("%-30s %10.3f %12.2f %11.2f\n", "ELSA Accelerator (1x)",
		t.InternalAreaMM2, t.InternalDynamicMW, t.InternalStaticMW)
	fmt.Printf("%-30s %10.3f %12.2f %11.2f\n", "External Memory Modules (1x)",
		t.ExternalAreaMM2, t.ExternalDynamicMW, t.ExternalStaticMW)
	fmt.Printf("peak power per accelerator: %.2f W (paper ~1.49 W)\n", energy.PeakPowerWatts())
	return nil
}

func runA3(opt experiments.Options) error {
	res, err := experiments.A3Compare(opt)
	if err != nil {
		return err
	}
	header("§V-E: comparison with the A3 accelerator (BERT/SQuADv1.1)")
	fmt.Printf("ELSA speedup over ELSA-base: cons %.2fx (paper 2.76x) | mod %.2fx (paper 3.72x)\n",
		res.ElsaSpeedupOverBase[experiments.Conservative],
		res.ElsaSpeedupOverBase[experiments.Moderate])
	fmt.Printf("A3 approximation speedup over its base: published %.2fx, modeled %.2fx\n",
		res.A3PublishedSpeedup, res.A3ModeledSpeedup)
	fmt.Printf("raw speedup over A3-approx: cons %.2fx (paper 5.96x) | mod %.2fx (paper 8.04x)\n",
		res.RawSpeedupRatio[experiments.Conservative],
		res.RawSpeedupRatio[experiments.Moderate])
	return nil
}

func runTPU(opt experiments.Options) error {
	rows, err := experiments.TPUCompare(opt)
	if err != nil {
		return err
	}
	header("§V-E: comparison with Google TPUv2 (ALBERT, iso-peak-FLOPS)")
	fmt.Printf("%-12s %12s %14s %14s\n", "dataset", "tpu-vs-gpu", "elsa-base/tpu", "elsa-mod/tpu")
	for _, r := range rows {
		fmt.Printf("%-12s %11.1fx %13.1fx %13.1fx\n", r.Dataset, r.TPURawVsGPU,
			r.ElsaVsTPUIsoPeak[experiments.Base],
			r.ElsaVsTPUIsoPeak[experiments.Moderate])
	}
	fmt.Println("paper: base 8.3/6.4/2.4x, moderate 27.8/20.9/8.0x for SQuADv1.1/2.0/RACE")
	return nil
}

func runAblations(opt experiments.Options) error {
	header("Ablation: orthogonal vs Gaussian SRP (§III-B)")
	hk, err := experiments.AblateHashKind(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %14s %10s\n", "projection", "mean-abs-err", "theta-bias")
	for _, r := range hk {
		fmt.Printf("%-12s %14.4f %10.4f\n", r.Kind, r.MeanAbsErr, r.Bias)
	}

	header("Ablation: theta_bias correction on/off (§III-B)")
	ba, err := experiments.AblateBias(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %12s\n", "bias", "retained-mass", "cand-frac")
	for _, r := range ba {
		fmt.Printf("%-10v %14.4f %11.1f%%\n", r.BiasEnabled, r.RetainedMass, 100*r.CandidateFraction)
	}

	header("Ablation: hash-computation structure (§III-C)")
	ka, err := experiments.AblateKron(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %8s %12s %11s\n", "structure", "mults", "cycles/vec", "angle-err")
	for _, r := range ka {
		fmt.Printf("%-14s %8d %12d %11.4f\n", r.Structure, r.Multiplications, r.HashCyclesPerVec, r.AngleErr)
	}

	header("Ablation: hash length k (§IV-E)")
	ks, err := experiments.AblateK(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %11s %14s %10s %14s\n", "k", "cand-frac", "retained-mass", "hash-muls", "hash-SRAM(B)")
	for _, r := range ks {
		fmt.Printf("%6d %10.1f%% %14.4f %10d %14d\n", r.K, 100*r.CandidateFraction, r.RetainedMass, r.HashMuls, r.KeyHashBytes)
	}

	header("Ablation: fixed-point quantization (§IV-E, <0.2% claim)")
	qa, err := experiments.AblateQuantization(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %12s %14s\n", "quantized", "mean-cosine", "retained-mass")
	for _, r := range qa {
		fmt.Printf("%-10v %12.4f %14.4f\n", r.Quantized, r.MeanCosine, r.RetainedMass)
	}

	header("Ablation: threshold vs oracle top-c sorting (§III-E)")
	sa, err := experiments.AblateSelection(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %11s %14s\n", "method", "cand-frac", "retained-mass")
	for _, r := range sa {
		fmt.Printf("%-20s %10.1f%% %14.4f\n", r.Method, 100*r.CandidateFraction, r.RetainedMass)
	}

	header("Ablation: downstream probe accuracy (task-level proxy)")
	pr, err := experiments.AblateProbe(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %5s %10s %11s\n", "mode", "p", "accuracy", "cand-frac")
	for _, r := range pr {
		fmt.Printf("%-14s %5.1f %9.1f%% %10.1f%%\n", r.Mode, r.P, 100*r.Accuracy, 100*r.CandidateFraction)
	}

	header("Ablation: pipeline design space Pa x Pc (§IV-D)")
	pp, err := experiments.AblatePipeline(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%4s %4s %5s %4s %7s %12s %12s %9s %11s %10s %12s\n",
		"Pa", "Pc", "mh", "mo", "mults", "base-cyc", "cons-cyc", "speedup", "scan-bound", "area-mm2", "ops/s/mm2")
	for _, p := range pp {
		fmt.Printf("%4d %4d %5d %4d %7d %12d %12d %8.2fx %10.1f%% %10.2f %12.0f\n",
			p.Pa, p.Pc, p.Mh, p.Mo, p.Multipliers,
			p.BaseCycles, p.ConsCycles, p.ApproxSpeedup, 100*p.ScanBoundFrac,
			p.AreaMM2, p.ThroughputPerArea)
	}
	return nil
}

func runEndToEnd(opt experiments.Options) error {
	rows, err := experiments.EndToEnd(opt)
	if err != nil {
		return err
	}
	header("§V-C: end-to-end model speedup with ELSA-conservative attention offload")
	fmt.Printf("%-15s %5s %11s %13s %10s %12s\n", "model", "seq", "attn-share", "attn-speedup", "e2e", "e2e+fastFC")
	for _, r := range rows {
		fmt.Printf("%-15s %4dx %10.1f%% %12.1fx %9.2fx %11.2fx\n",
			r.Model, r.SeqMult, 100*r.AttnShareGPU, r.AttnSpeedup, r.Speedup, r.SpeedupFastRest)
	}
	s := experiments.SummarizeEndToEnd(rows)
	fmt.Printf("default length: %.2f-%.2fx, geomean %.2fx (paper: 1.4-2.5x)\n", s.MinDefault, s.MaxDefault, s.GeomeanDefault)
	fmt.Printf("4x length:      %.2f-%.2fx, geomean %.2fx (paper: 2.4-5.0x)\n", s.Min4x, s.Max4x, s.Geomean4x)

	header("fleet schedule: one inference's attention ops on 12 accelerators")
	sched, err := experiments.ModelSchedule(opt)
	if err != nil {
		return err
	}
	fmt.Printf("%-15s %8s %7s %13s %13s %12s\n", "model", "headops", "waves", "makespan(s)", "perfect(s)", "utilization")
	for _, r := range sched {
		fmt.Printf("%-15s %8d %7d %13.3g %13.3g %11.1f%%\n",
			r.Model, r.HeadOps, r.WavesPerLayer, r.MakespanSeconds, r.PerfectSeconds, 100*r.Utilization)
	}
	return nil
}

func runHost(opt experiments.Options) error {
	// One conservative op at the paper's size, simulated, then analyzed
	// across host-integration links (§IV-B).
	sec, err := experiments.RepresentativeOpSeconds(opt)
	if err != nil {
		return err
	}
	header("§IV-B: host integration overhead (one n=512 op)")
	fmt.Printf("accelerator compute time: %.3g s\n", sec)
	fmt.Printf("%-34s %12s %10s %16s\n", "link", "transfer(s)", "overhead", "eff-speedup@57x")
	for _, l := range []host.Link{host.ByReference(), host.NVLink2(), host.PCIe3x16()} {
		in, err := host.Analyze(l, 512, 64, sec)
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %12.3g %9.1f%% %15.1fx\n",
			l.Name, in.TransferSec, 100*in.Overhead(), in.EffectiveSpeedup(57))
	}
	fmt.Println("the paper integrates ELSA by reference into the host's scratchpad for this reason")
	return nil
}

// emitSVG renders the figure-style experiments as SVG charts.
func emitSVG(dir string, opt experiments.Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, svg string) error {
		return os.WriteFile(dir+"/"+name, []byte(svg), 0o644)
	}

	// Fig 10: candidate fraction and proxy loss vs p (per-combo lines).
	f10, err := experiments.Fig10(opt)
	if err != nil {
		return err
	}
	byCombo := map[string][]experiments.Fig10Row{}
	var order10 []string
	for _, r := range f10 {
		if _, ok := byCombo[r.Combo]; !ok {
			order10 = append(order10, r.Combo)
		}
		byCombo[r.Combo] = append(byCombo[r.Combo], r)
	}
	var fracSeries, lossSeries []plot.Series
	for _, combo := range order10 {
		rows := byCombo[combo]
		fs := plot.Series{Name: combo}
		ls := plot.Series{Name: combo}
		for _, r := range rows {
			fs.Values = append(fs.Values, 100*r.CandidateFraction)
			ls.Values = append(ls.Values, r.AccuracyLossPct)
		}
		fracSeries = append(fracSeries, fs)
		lossSeries = append(lossSeries, ls)
	}
	svg, err := (plot.LineChart{
		Title: "Fig 10: candidate fraction vs p", XLabel: "p",
		YLabel: "% of keys inspected", X: experiments.Fig10P, Series: fracSeries,
		Height: 520,
	}).SVG()
	if err != nil {
		return err
	}
	if err := write("fig10_fraction.svg", svg); err != nil {
		return err
	}
	svg, err = (plot.LineChart{
		Title: "Fig 10: accuracy-proxy loss vs p", XLabel: "p",
		YLabel: "loss (pct points)", X: experiments.Fig10P, Series: lossSeries,
		Height: 520,
	}).SVG()
	if err != nil {
		return err
	}
	if err := write("fig10_loss.svg", svg); err != nil {
		return err
	}

	// Fig 11a: throughput bars (log scale).
	rows11, _, err := experiments.Fig11(opt)
	if err != nil {
		return err
	}
	var labels []string
	series11 := []plot.Series{
		{Name: "ideal"}, {Name: "base"}, {Name: "conservative"},
		{Name: "moderate"}, {Name: "aggressive"},
	}
	var lat11 []plot.Series
	lat11 = []plot.Series{{Name: "base"}, {Name: "conservative"}, {Name: "moderate"}, {Name: "aggressive"}}
	for _, r := range rows11 {
		labels = append(labels, r.Combo)
		series11[0].Values = append(series11[0].Values, r.IdealThroughputNorm)
		for mi, m := range experiments.Modes() {
			series11[mi+1].Values = append(series11[mi+1].Values, r.ThroughputNorm[m])
			lat11[mi].Values = append(lat11[mi].Values, r.LatencyVsIdeal[m])
		}
	}
	svg, err = (plot.BarChart{
		Title:  "Fig 11a: normalized self-attention throughput (GPU = 1)",
		YLabel: "x over GPU (log)", XLabels: labels, Series: series11, LogY: true,
		Width: 1100, Height: 520,
	}).SVG()
	if err != nil {
		return err
	}
	if err := write("fig11a_throughput.svg", svg); err != nil {
		return err
	}
	svg, err = (plot.BarChart{
		Title:  "Fig 11b: latency vs ideal accelerator",
		YLabel: "x of ideal latency", XLabels: labels, Series: lat11,
		Width: 1100, Height: 520,
	}).SVG()
	if err != nil {
		return err
	}
	if err := write("fig11b_latency.svg", svg); err != nil {
		return err
	}

	// Fig 13a: energy-efficiency bars (log scale).
	rows13, _, err := experiments.Fig13(opt)
	if err != nil {
		return err
	}
	labels = labels[:0]
	series13 := []plot.Series{{Name: "base"}, {Name: "conservative"}, {Name: "moderate"}, {Name: "aggressive"}}
	for _, r := range rows13 {
		labels = append(labels, r.Combo)
		for mi, m := range experiments.Modes() {
			series13[mi].Values = append(series13[mi].Values, r.EfficiencyGain[m])
		}
	}
	svg, err = (plot.BarChart{
		Title:  "Fig 13a: energy efficiency vs GPU",
		YLabel: "x over GPU (log)", XLabels: labels, Series: series13, LogY: true,
		Width: 1100, Height: 520,
	}).SVG()
	if err != nil {
		return err
	}
	if err := write("fig13a_efficiency.svg", svg); err != nil {
		return err
	}

	// End-to-end speedups.
	rowsE2E, err := experiments.EndToEnd(opt)
	if err != nil {
		return err
	}
	labels = labels[:0]
	seriesE2E := []plot.Series{{Name: "default length"}, {Name: "4x length"}}
	byModel := map[string]map[int]float64{}
	var modelOrder []string
	for _, r := range rowsE2E {
		if _, ok := byModel[r.Model]; !ok {
			byModel[r.Model] = map[int]float64{}
			modelOrder = append(modelOrder, r.Model)
		}
		byModel[r.Model][r.SeqMult] = r.Speedup
	}
	for _, m := range modelOrder {
		labels = append(labels, m)
		seriesE2E[0].Values = append(seriesE2E[0].Values, byModel[m][1])
		seriesE2E[1].Values = append(seriesE2E[1].Values, byModel[m][4])
	}
	svg, err = (plot.BarChart{
		Title:  "End-to-end model speedup with ELSA attention offload (§V-C)",
		YLabel: "x over GPU-only", XLabels: labels, Series: seriesE2E,
		Width: 900, Height: 420,
	}).SVG()
	if err != nil {
		return err
	}
	return write("e2e_speedup.svg", svg)
}

func runWorkloads(opt experiments.Options) error {
	rows, err := experiments.WorkloadDiagnostics(opt)
	if err != nil {
		return err
	}
	header("workload diagnostics: synthetic attention-distribution shape")
	fmt.Printf("%-14s %9s %11s %9s %9s %9s %9s\n",
		"dataset", "mean-len", "len-range", "entropy", "eff-keys", "top10%", ">1/n")
	for _, r := range rows {
		fmt.Printf("%-14s %9.0f %5d-%-5d %9.2f %9.1f %8.1f%% %8.1f%%\n",
			r.Dataset, r.MeanLen, r.MinLen, r.MaxLen,
			r.Stats.MeanEntropy, r.Stats.MeanEffectiveSupport,
			100*r.Stats.Top10Mass, 100*r.Stats.AboveUniform)
	}
	fmt.Println("(§II-C premise: few keys hold most softmax mass; the >1/n column is the")
	fmt.Println(" population the p=1 threshold rule targets)")
	return nil
}

func runModelFidelity(opt experiments.Options) error {
	rows, err := experiments.ModelFidelity(opt)
	if err != nil {
		return err
	}
	header("whole-model fidelity: truncated BERT encoder with per-sub-layer thresholds")
	fmt.Printf("%6s %11s %12s %17s\n", "p", "cand-frac", "mean-cosine", "threshold-spread")
	for _, r := range rows {
		fmt.Printf("%6.1f %10.1f%% %12.4f %17.4f\n", r.P, 100*r.CandidateFraction, r.MeanCosine, r.ThresholdSpread)
	}
	fmt.Println("(final-layer token representations vs the exact-attention forward pass)")
	return nil
}
