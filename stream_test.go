package elsa

import (
	"math"
	"math/rand"
	"testing"
)

func TestPublicStreamMatchesAttend(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	e := newEngine(t, Options{Seed: 30})
	q, k, v := genData(rng, 8, 24, 64)
	st := e.NewStream(24)
	for i := range k {
		if err := st.Append(k[i], v[i]); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 24 {
		t.Fatalf("Len = %d", st.Len())
	}
	batch, err := e.Attend(q, k, v, Exact())
	if err != nil {
		t.Fatal(err)
	}
	for i := range q {
		out, stats, err := st.Query(q[i], Exact())
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates != 24 || stats.Fallback {
			t.Errorf("query %d: stats %+v", i, stats)
		}
		for j := range out {
			if math.Abs(float64(out[j]-batch.Context[i][j])) > 1e-6 {
				t.Fatalf("query %d: stream output diverges at %d", i, j)
			}
		}
	}
}

func TestPublicStreamErrors(t *testing.T) {
	e := newEngine(t, Options{Seed: 31})
	st := e.NewStream(4)
	if err := st.Append(make([]float32, 3), make([]float32, 64)); err == nil {
		t.Error("bad key dim should error")
	}
	if _, _, err := st.Query(make([]float32, 64), Exact()); err == nil {
		t.Error("empty stream query should error")
	}
}

func TestPublicBlockwiseMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	e := newEngine(t, Options{Seed: 32})
	q, k, v := genData(rng, 8, 40, 64)
	out, err := e.AttendBlockwise(q, k, v, 16, Exact())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := e.ExactAttention(q, k, v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		for j := range exact[i] {
			if math.Abs(float64(exact[i][j]-out.Context[i][j])) > 1e-4 {
				t.Fatalf("blockwise diverges from exact at %d,%d", i, j)
			}
		}
	}
	if out.CandidateFraction != 1 {
		t.Errorf("exact threshold fraction = %g", out.CandidateFraction)
	}
}

func TestPublicBlockwiseErrors(t *testing.T) {
	e := newEngine(t, Options{Seed: 33})
	rng := rand.New(rand.NewSource(33))
	q, k, v := genData(rng, 4, 16, 64)
	if _, err := e.AttendBlockwise(q, k, v, 0, Exact()); err == nil {
		t.Error("zero block size should error")
	}
	if _, err := e.AttendBlockwise(nil, k, v, 8, Exact()); err == nil {
		t.Error("nil queries should error")
	}
}

func TestPublicStreamQueryWithAndKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	e := newEngine(t, Options{Seed: 33})
	_, k, v := genData(rng, 1, 12, 64)
	st := e.NewStream(12)
	for i := range k {
		if err := st.Append(k[i], v[i]); err != nil {
			t.Fatal(err)
		}
	}
	keys := st.Keys()
	if len(keys) != 12 {
		t.Fatalf("Keys returned %d rows", len(keys))
	}
	for i := range keys {
		for j := range keys[i] {
			if keys[i][j] != k[i][j] {
				t.Fatalf("Keys row %d differs at %d", i, j)
			}
		}
	}
	// Keys must be copies: mutating them must not corrupt the stream.
	keys[0][0] += 100

	q, _, _ := genData(rng, 1, 1, 64)
	want, _, err := st.Query(q[0], Exact())
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 0, 64)
	got, stats, err := st.QueryWith(dst, q[0], Exact())
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[:1][0] {
		t.Error("QueryWith did not reuse the caller's buffer")
	}
	if stats.Candidates != 12 {
		t.Errorf("stats %+v", stats)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("QueryWith diverges from Query at %d", j)
		}
	}
}
