package elsa

import (
	"fmt"
	"sync"

	"elsa/internal/attention"
	"elsa/internal/elsasim"
	"elsa/internal/tensor"
)

// Options configures an Engine. The zero value of every field selects the
// paper's default.
type Options struct {
	// HeadDim is the per-head vector dimension d (default 64).
	HeadDim int
	// HashBits is the binary-embedding width k (default: HeadDim).
	HashBits int
	// Quantized runs the datapath with the accelerator's number formats
	// (Q(1,5,3) inputs, LUT exponent/reciprocal/sqrt units) instead of
	// float32/64 (default false).
	Quantized bool
	// Scale is the softmax scale (default 1/√HeadDim).
	Scale float64
	// Seed drives projection and calibration randomness (default 0).
	Seed int64
	// Hardware configures the simulated accelerator (default: the paper's
	// n=512, Pa=4, Pc=8, m_h=256, m_o=16 at 1 GHz).
	Hardware Hardware
}

// Hardware is the accelerator pipeline configuration exposed by the public
// API; see the paper's §IV-D for the role of each knob.
type Hardware struct {
	// MaxSeq is the maximum entity count n the hardware is sized for.
	MaxSeq int
	// AttentionModules is P_a, the parallel attention-computation module
	// (and memory bank) count.
	AttentionModules int
	// SelectorsPerBank is P_c, candidate-selection modules per bank.
	SelectorsPerBank int
	// HashMultipliers is m_h.
	HashMultipliers int
	// DivMultipliers is m_o.
	DivMultipliers int
	// FreqHz is the clock frequency.
	FreqHz float64
}

// DefaultHardware returns the paper's evaluation configuration.
func DefaultHardware() Hardware {
	c := elsasim.Default()
	return Hardware{
		MaxSeq:           c.N,
		AttentionModules: c.Pa,
		SelectorsPerBank: c.Pc,
		HashMultipliers:  c.Mh,
		DivMultipliers:   c.Mo,
		FreqHz:           c.FreqHz,
	}
}

func (h Hardware) toSim(d, k int) elsasim.Config {
	return elsasim.Config{
		N: h.MaxSeq, D: d, K: k,
		Pa: h.AttentionModules, Pc: h.SelectorsPerBank,
		Mh: h.HashMultipliers, Mo: h.DivMultipliers,
		FreqHz: h.FreqHz,
	}
}

// Threshold is a learned candidate-selection threshold for one attention
// (sub-)layer at a chosen degree of approximation.
type Threshold struct {
	// P is the degree-of-approximation hyperparameter it was learned for
	// (0 disables approximation).
	P float64
	// T is the learned layer threshold in query-normalized similarity
	// units; the filter admits keys with ‖K_y‖·cos(θ̂) > T·‖K_max‖.
	T float64
	// Queries is how many calibration queries contributed.
	Queries int
}

// Exact is the threshold that disables approximation (p = 0 fallback).
func Exact() Threshold {
	return Threshold{P: 0, T: attention.ExactThresholdNoApprox}
}

// Engine runs exact and approximate self-attention and simulates the
// accelerator. Create one with New; an Engine is immutable and safe for
// concurrent use.
type Engine struct {
	opts   Options
	engine *attention.Engine
	sim    *elsasim.Simulator
	// wsPool recycles attention workspaces for the serving-oriented Attend
	// fast path, which skips per-query candidate-list collection.
	wsPool sync.Pool
}

// getWorkspace takes a no-candidate-collection workspace from the pool.
func (e *Engine) getWorkspace() *attention.Workspace {
	ws, ok := e.wsPool.Get().(*attention.Workspace)
	if !ok {
		ws = attention.NewWorkspace(e.engine)
	}
	ws.CollectCandidates = false
	return ws
}

// New builds an Engine: it draws the Kronecker-structured hash projection,
// calibrates θ_bias, and instantiates the hardware simulator.
func New(opts Options) (*Engine, error) {
	if opts.HeadDim == 0 {
		opts.HeadDim = 64
	}
	if opts.Hardware == (Hardware{}) {
		opts.Hardware = DefaultHardware()
	}
	eng, err := attention.NewEngine(attention.Config{
		D:         opts.HeadDim,
		K:         opts.HashBits,
		Scale:     opts.Scale,
		Quantized: opts.Quantized,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("elsa: %w", err)
	}
	sim, err := newSimulator(opts, eng)
	if err != nil {
		return nil, err
	}
	opts.HashBits = eng.Config().K
	opts.Scale = eng.Config().Scale
	return &Engine{opts: opts, engine: eng, sim: sim}, nil
}

// newSimulator builds the hardware simulator matched to the engine.
func newSimulator(opts Options, eng *attention.Engine) (*elsasim.Simulator, error) {
	sim, err := elsasim.New(opts.Hardware.toSim(eng.Config().D, eng.Config().K), eng)
	if err != nil {
		return nil, fmt.Errorf("elsa: %w", err)
	}
	return sim, nil
}

// Options returns the resolved options.
func (e *Engine) Options() Options { return e.opts }

// Bias returns the calibrated θ_bias angle-correction term (§III-B; the
// paper reports 0.127 for d = k = 64).
func (e *Engine) Bias() float64 { return e.engine.Bias() }

// toMatrix validates and converts a [][]float32 into the internal dense
// representation.
func toMatrix(name string, rows [][]float32, wantCols int) (*tensor.Matrix, error) {
	m, err := tensor.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("elsa: %s: %w", name, err)
	}
	if wantCols > 0 && m.Cols != wantCols {
		return nil, fmt.Errorf("elsa: %s has %d columns, engine head dim is %d", name, m.Cols, wantCols)
	}
	return m, nil
}

func fromMatrix(m *tensor.Matrix) [][]float32 {
	out := make([][]float32, m.Rows)
	for i := range out {
		out[i] = append([]float32(nil), m.Row(i)...)
	}
	return out
}

// ExactAttention computes the reference softmax(scale·Q·Kᵀ)·V.
func (e *Engine) ExactAttention(q, k, v [][]float32) ([][]float32, error) {
	qm, err := toMatrix("queries", q, e.opts.HeadDim)
	if err != nil {
		return nil, err
	}
	km, err := toMatrix("keys", k, e.opts.HeadDim)
	if err != nil {
		return nil, err
	}
	vm, err := toMatrix("values", v, e.opts.HeadDim)
	if err != nil {
		return nil, err
	}
	if km.Rows != vm.Rows {
		return nil, fmt.Errorf("elsa: %d keys but %d values", km.Rows, vm.Rows)
	}
	return fromMatrix(attention.Exact(qm, km, vm, e.opts.Scale)), nil
}

// AttendLinearScan computes exact attention through the linear-scan
// backend: online softmax in one streaming pass over the keys, O(d) state
// per query, no n×n score materialization. It is the second independent
// exact implementation (ExactAttention materializes scores) and agrees
// with it within the differential bound the fuzz suite pins. The Output
// reports every key as a candidate (CandidateFraction 1, no fallbacks).
// Callers select it per op via Overrides.Backend = BackendLinearScan.
func (e *Engine) AttendLinearScan(q, k, v [][]float32) (*Output, error) {
	qm, err := toMatrix("queries", q, e.opts.HeadDim)
	if err != nil {
		return nil, err
	}
	km, err := toMatrix("keys", k, e.opts.HeadDim)
	if err != nil {
		return nil, err
	}
	vm, err := toMatrix("values", v, e.opts.HeadDim)
	if err != nil {
		return nil, err
	}
	pre, err := e.engine.PreprocessExact(km, vm)
	if err != nil {
		return nil, fmt.Errorf("elsa: %w", err)
	}
	ws := e.getWorkspace()
	res, err := e.engine.AttendLinearScanWith(ws, qm, pre)
	if err != nil {
		e.wsPool.Put(ws)
		return nil, fmt.Errorf("elsa: %w", err)
	}
	out := &Output{
		Context:            fromMatrix(res.Output),
		CandidateFraction:  res.CandidateFraction(km.Rows),
		CandidatesPerQuery: append([]int(nil), res.CandidateCounts...),
		FallbackQueries:    res.FallbackQueries,
	}
	e.wsPool.Put(ws)
	return out, nil
}

// Sample is one calibration invocation: the query and key matrices of an
// attention call on representative data.
type Sample struct {
	Q, K [][]float32
}

// Calibrate learns the layer threshold for degree-of-approximation p from
// calibration samples (the paper's Fig 6 procedure). p = 0 returns the
// exact (filter-disabled) threshold without needing samples.
func (e *Engine) Calibrate(p float64, samples []Sample) (Threshold, error) {
	if p == 0 {
		return Exact(), nil
	}
	tt, err := attention.NewThresholdTrainer(p, e.opts.Scale)
	if err != nil {
		return Threshold{}, fmt.Errorf("elsa: %w", err)
	}
	for i, s := range samples {
		qm, err := toMatrix(fmt.Sprintf("sample %d queries", i), s.Q, e.opts.HeadDim)
		if err != nil {
			return Threshold{}, err
		}
		km, err := toMatrix(fmt.Sprintf("sample %d keys", i), s.K, e.opts.HeadDim)
		if err != nil {
			return Threshold{}, err
		}
		if err := tt.Observe(qm, km); err != nil {
			return Threshold{}, fmt.Errorf("elsa: %w", err)
		}
	}
	t, err := tt.Threshold()
	if err != nil {
		return Threshold{}, fmt.Errorf("elsa: %w", err)
	}
	return Threshold{P: p, T: t, Queries: tt.Count()}, nil
}

// Output is the result of an approximate attention invocation.
type Output struct {
	// Context is the attention output, one row per query.
	Context [][]float32
	// CandidateFraction is the mean fraction of keys that survived the
	// filter per query.
	CandidateFraction float64
	// CandidatesPerQuery lists how many keys each query computed exactly.
	CandidatesPerQuery []int
	// FallbackQueries counts queries whose filter selected nothing (the
	// engine used the single best approximate key).
	FallbackQueries int
}

// Attend runs ELSA approximate self-attention with the given threshold. It
// uses the workspace fast path: per-query candidate index lists are not
// collected (Output does not expose them), so the steady-state query loop
// allocates nothing.
func (e *Engine) Attend(q, k, v [][]float32, thr Threshold) (*Output, error) {
	res, _, err := e.attend(q, k, v, thr, false)
	return res, err
}

// attend is the shared attend implementation. With collect set the returned
// attention.Result carries the per-query candidate lists (Evaluate needs
// them for the fidelity comparison); without it the pooled
// no-candidate-collection workspace path is used and the Result is nil.
func (e *Engine) attend(q, k, v [][]float32, thr Threshold, collect bool) (*Output, *attention.Result, error) {
	qm, err := toMatrix("queries", q, e.opts.HeadDim)
	if err != nil {
		return nil, nil, err
	}
	km, err := toMatrix("keys", k, e.opts.HeadDim)
	if err != nil {
		return nil, nil, err
	}
	vm, err := toMatrix("values", v, e.opts.HeadDim)
	if err != nil {
		return nil, nil, err
	}
	pre, err := e.engine.Preprocess(km, vm)
	if err != nil {
		return nil, nil, fmt.Errorf("elsa: %w", err)
	}
	if !collect {
		ws := e.getWorkspace()
		res, err := e.engine.AttendWith(ws, qm, pre, thr.T)
		if err != nil {
			e.wsPool.Put(ws)
			return nil, nil, fmt.Errorf("elsa: %w", err)
		}
		// The Result is workspace-owned, so copy what Output exposes
		// before the workspace returns to the pool.
		out := &Output{
			Context:            fromMatrix(res.Output),
			CandidateFraction:  res.CandidateFraction(km.Rows),
			CandidatesPerQuery: append([]int(nil), res.CandidateCounts...),
			FallbackQueries:    res.FallbackQueries,
		}
		e.wsPool.Put(ws)
		return out, nil, nil
	}
	res, err := e.engine.Attend(qm, pre, thr.T)
	if err != nil {
		return nil, nil, fmt.Errorf("elsa: %w", err)
	}
	return &Output{
		Context:            fromMatrix(res.Output),
		CandidateFraction:  res.CandidateFraction(km.Rows),
		CandidatesPerQuery: res.CandidateCounts,
		FallbackQueries:    res.FallbackQueries,
	}, res, nil
}

// Fidelity compares an approximate run against exact attention on the same
// inputs.
type Fidelity struct {
	// MeanCosine and MinCosine measure per-row output direction agreement.
	MeanCosine, MinCosine float64
	// RetainedMass is the mean exact softmax mass of the selected keys.
	RetainedMass float64
	// MeanAbsErr is the mean absolute elementwise error.
	MeanAbsErr float64
}

// Evaluate runs approximate attention and measures its fidelity against the
// exact operator in one call.
func (e *Engine) Evaluate(q, k, v [][]float32, thr Threshold) (*Output, Fidelity, error) {
	out, res, err := e.attend(q, k, v, thr, true)
	if err != nil {
		return nil, Fidelity{}, err
	}
	qm, _ := toMatrix("queries", q, e.opts.HeadDim)
	km, _ := toMatrix("keys", k, e.opts.HeadDim)
	vm, _ := toMatrix("values", v, e.opts.HeadDim)
	exactOut, exactScores := attention.ExactWithScores(qm, km, vm, e.opts.Scale)
	fid, err := attention.Compare(exactOut, exactScores, res)
	if err != nil {
		return nil, Fidelity{}, fmt.Errorf("elsa: %w", err)
	}
	return out, Fidelity{
		MeanCosine:   fid.MeanCosine,
		MinCosine:    fid.MinCosine,
		RetainedMass: fid.RetainedMass,
		MeanAbsErr:   fid.MeanAbsErr,
	}, nil
}

// AttendCausal runs ELSA approximate attention with causal (decoder-style)
// masking: query i attends only keys 0..i. Queries, keys and values must
// have the same row count.
func (e *Engine) AttendCausal(q, k, v [][]float32, thr Threshold) (*Output, error) {
	qm, err := toMatrix("queries", q, e.opts.HeadDim)
	if err != nil {
		return nil, err
	}
	km, err := toMatrix("keys", k, e.opts.HeadDim)
	if err != nil {
		return nil, err
	}
	vm, err := toMatrix("values", v, e.opts.HeadDim)
	if err != nil {
		return nil, err
	}
	pre, err := e.engine.Preprocess(km, vm)
	if err != nil {
		return nil, fmt.Errorf("elsa: %w", err)
	}
	res, err := e.engine.AttendCausal(qm, pre, thr.T)
	if err != nil {
		return nil, fmt.Errorf("elsa: %w", err)
	}
	return &Output{
		Context:            fromMatrix(res.Output),
		CandidateFraction:  res.CandidateFraction(km.Rows),
		CandidatesPerQuery: res.CandidateCounts,
		FallbackQueries:    res.FallbackQueries,
	}, nil
}
