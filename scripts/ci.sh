#!/usr/bin/env bash
# CI gate: vet, formatting, build, the race-enabled test suite, the
# zero-allocation hot-path assertions, and the perf trajectory check.
# The serving scheduler is concurrent by design — the -race run is the
# contract that it stays race-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
# -tests=true (the default, stated explicitly) also vets *_test.go, which
# covers the benchmark files.
go vet -tests=true ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== serving subsystem under -race =="
# The dispatcher, replica pool, threshold registry, session registry and
# the cross-host fleet path (remote workers, health probes, reroute, the
# servetest fault-injection suite) are the most concurrent code in the
# tree; run the whole subtree explicitly with -count=1 so the race
# detector can never be satisfied from cache.
go test -race -count=1 ./internal/serve/...

echo "== session migration churn under -race =="
# The portable-session-state paths — export/import round trips, idle
# spill + rehydrate, drain-time relocation, worker-loss recovery from
# the shadow mirror — race session gates against the registry lock and
# the recovery retry; run the suite explicitly so a -run filter above
# can never silently drop it, with -count=1 to defeat caching.
go test -race -count=1 -run 'TestSessionExportImport|TestSessionSpill|TestMemberDrainRelocates|TestWorkerLossRecovers|TestZeroPinnedDrain' ./internal/serve/

echo "== autoscale loop under -race =="
# The closed autoscale loop races the controller (polling the versioned
# cluster view and driving drain/rebalance) against live traffic, session
# migration and the batched shadow-mirror flusher; run the policy package
# and the fake-fleet e2e explicitly so a -run filter above can never
# silently drop them, with -count=1 to defeat caching.
go test -race -count=1 ./internal/serve/autoscale/
go test -race -count=1 -run 'TestAutoscale' ./internal/serve/

echo "== exact linear-scan differential suite under -race =="
# The linear-scan backend is the oracle every fidelity bound leans on, so
# its own correctness gate runs explicitly: the seeded fuzz corpus (the
# f.Add cases — degenerate softmax regimes included — run as regular
# tests), the streaming ≡ batch equivalence suite across the cold-
# watermark demotion boundary, and the cross-oracle agreement checks in
# the experiments package. -count=1 so a -run filter above can never
# satisfy this from cache.
go test -race -count=1 \
    -run 'FuzzLinearScanMatchesScores|TestLinearScan' ./internal/attention/
go test -race -count=1 \
    -run 'TestAblationOracleAgreement|TestFilteringKeepsFidelityOnClusteredData' \
    ./internal/experiments/ ./internal/attention/
go test -race -count=1 -run 'TestAttendBackendSelection|TestServerDefaultExactBackend|TestSessionBackend|TestSessionStepBackendPerEntry|TestMigrationPreservesBackend' ./internal/serve/

echo "== zero-alloc hot path =="
# The alloc assertions are the steady-state performance contract; run them
# explicitly so they can never be skipped under -short, with -count=1 to
# defeat test caching.
go test -count=1 -run 'ZeroAlloc' ./internal/attention/ ./internal/serve/

echo "== perf trajectory (committed files) =="
# Gate the committed trajectory itself: compare the two newest BENCH_*.json
# files against each other without re-measuring, so a PR that commits a
# regressed snapshot is caught even on noisy hardware. Warns by default;
# PERF_STRICT=1 makes it fail the build.
# BENCH_*_serving.json files hold serving-layer rows, not the engine ns/op
# shape the compare gate reads; keep them out of both globs.
mapfile -t bench_files < <(ls -1 BENCH_*.json 2>/dev/null | grep -v '_serving\.json' | sort -V)
if [ "${#bench_files[@]}" -ge 2 ]; then
    prev="${bench_files[-2]}"
    newest="${bench_files[-1]}"
    echo "comparing committed $newest vs $prev"
    if go run ./cmd/elsabench -experiment bench \
        -compare "$newest" -baseline "$prev"; then
        :
    else
        if [ "${PERF_STRICT:-0}" = "1" ]; then
            echo "committed perf trajectory regressed (PERF_STRICT=1): failing" >&2
            exit 1
        fi
        echo "WARNING: committed $newest regressed >15% vs $prev (set PERF_STRICT=1 to fail)" >&2
    fi
else
    echo "fewer than two committed BENCH_*.json files; skipping"
fi

echo "== serving perf trajectory (committed files) =="
# Same idea for the serving-layer trajectory: compare the two newest
# committed BENCH_*_serving.json snapshots on ops/s per {replicas,
# concurrency} point, on decode mean_batch per {sessions, mode} point,
# and on the exact-backend family per {workload, backend} point — the
# memory-ceiling row (linear-scan bytes/op must stay under the scores
# backend's), the pinned differential bound, and streaming tokens/s.
# Families absent from either snapshot skip their slice of the gate, so
# snapshots predating decode batching / autoscale / the exact backends
# still compare on what they have. Warns by default; PERF_STRICT=1
# fails the build.
mapfile -t serving_files < <(ls -1 BENCH_*_serving.json 2>/dev/null | sort -V)
if [ "${#serving_files[@]}" -ge 2 ]; then
    prev="${serving_files[-2]}"
    newest="${serving_files[-1]}"
    echo "comparing committed $newest vs $prev"
    if go run ./cmd/elsabench -experiment serve \
        -compare "$newest" -baseline "$prev"; then
        :
    else
        if [ "${PERF_STRICT:-0}" = "1" ]; then
            echo "committed serving trajectory regressed (PERF_STRICT=1): failing" >&2
            exit 1
        fi
        echo "WARNING: committed $newest dropped >15% ops/s or decode mean_batch vs $prev (set PERF_STRICT=1 to fail)" >&2
    fi
else
    echo "fewer than two committed BENCH_*_serving.json files; skipping"
fi

echo "== perf trajectory (fresh run) =="
# Compare ns/op against the newest committed BENCH_*.json. Measurements on
# shared CI machines are noisy, so a >15% regression warns by default; set
# PERF_STRICT=1 to make it fail the build.
baseline=$(ls -1 BENCH_*.json 2>/dev/null | grep -v '_serving\.json' | sort -V | tail -n 1 || true)
if [ -n "$baseline" ]; then
    echo "baseline: $baseline"
    perf_json=$(mktemp /tmp/elsabench.XXXXXX.json)
    if go run ./cmd/elsabench -experiment bench -json "$perf_json" \
        -baseline "$baseline"; then
        :
    else
        if [ "${PERF_STRICT:-0}" = "1" ]; then
            echo "perf regression (PERF_STRICT=1): failing" >&2
            rm -f "$perf_json"
            exit 1
        fi
        echo "WARNING: ns/op regressed >15% vs $baseline (set PERF_STRICT=1 to fail)" >&2
    fi
    rm -f "$perf_json"
else
    echo "no committed BENCH_*.json baseline; skipping"
fi

echo "CI OK"
