#!/usr/bin/env bash
# CI gate: vet, formatting, build, and the race-enabled test suite.
# The serving scheduler is concurrent by design — the -race run is the
# contract that it stays race-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
